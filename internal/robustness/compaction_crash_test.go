package robustness

import (
	"fmt"
	"testing"

	"lsmio/internal/faultfs"
	"lsmio/internal/lsm"
	"lsmio/internal/vfs"
)

// TestCompactionCrashSweep is the multi-job variant of TestLSMCrashSweep:
// leveled compaction stays ENABLED with a two-worker background pool (and
// subcompaction sharding on the wide manual merge), so the recorded
// boundary stream includes table merges and manifest rewrites racing the
// foreground. A crash at every one of those boundaries must still recover
// every acknowledged write — compaction rearranges files, never logical
// content, so no version/manifest state it leaves behind may lose data.
func TestCompactionCrashSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-point enumeration sweep skipped in -short mode")
	}
	ffs := faultfs.New(vfs.NewMemFS())
	if err := ffs.StartRecording(); err != nil {
		t.Fatal(err)
	}

	opts := lsm.DefaultOptions(ffs)
	opts.Sync = true        // every acked write is WAL-synced
	opts.AsyncFlush = false // flushes stay on the writer thread
	opts.MaxBackgroundJobs = 2
	opts.WriteBufferSize = 4 << 10
	opts.L0CompactionTrigger = 2
	opts.BaseLevelSize = 8 << 10
	opts.LevelSizeMultiplier = 2
	opts.BitsPerKey = 0
	opts.DisableCompression = true

	db, err := lsm.Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	dumpTraceOnFailure(t, "", db.Obs())

	var ops []lsmOp
	put := func(key, value string) {
		if err := db.Put([]byte(key), []byte(value)); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
		ops = append(ops, lsmOp{after: ffs.Boundaries(), key: key, value: value})
	}
	del := func(key string) {
		if err := db.Delete([]byte(key)); err != nil {
			t.Fatalf("delete %s: %v", key, err)
		}
		ops = append(ops, lsmOp{after: ffs.Boundaries(), key: key, del: true})
	}

	// Phase 1: enough churn to roll several memtables and let the
	// background pool start merging L0 while writes continue.
	for i := 0; i < 48; i++ {
		put(fmt.Sprintf("c%03d", i%24), fmt.Sprintf("gen1-%02d-%s", i, pad(180)))
	}
	del("c005")
	del("c017")
	// Phase 2: overwrite a band, then force a wide sharded merge.
	for i := 0; i < 12; i++ {
		put(fmt.Sprintf("c%03d", i), fmt.Sprintf("gen2-%02d-%s", i, pad(180)))
	}
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	put("tail0", "post-compact-"+pad(80))
	put("tail1", "post-compact-"+pad(80))
	if err := db.WaitBackground(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	ffs.StopRecording()

	pts := ffs.CrashPoints()
	if len(pts) < 30 {
		t.Fatalf("workload crossed only %d boundaries; sweep too weak", len(pts))
	}
	var sawRename bool
	for _, pt := range pts {
		sawRename = sawRename || pt.Op == faultfs.OpRename
	}
	if !sawRename {
		t.Fatal("sweep never crossed a manifest/rename boundary")
	}

	reopenOpts := opts
	for _, pt := range pts {
		pt := pt
		t.Run(fmt.Sprintf("boundary%03d_%s", pt.Boundary, pt.Op), func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic recovering at boundary %d (%s %s): %v",
						pt.Boundary, pt.Op, pt.Path, r)
				}
			}()
			state, err := ffs.StateAfter(pt.Boundary)
			if err != nil {
				t.Fatalf("StateAfter: %v", err)
			}
			acked := 0
			for acked < len(ops) && ops[acked].after <= pt.Boundary {
				acked++
			}
			o := reopenOpts
			o.FS = state
			o.Platform = nil
			db2, err := lsm.Open("db", o)
			if err != nil {
				if acked > 0 {
					t.Fatalf("reopen failed with %d acked writes: %v", acked, err)
				}
				if _, rerr := lsm.Repair("db", o); rerr != nil {
					t.Fatalf("repair after early-crash open error (%v): %v", err, rerr)
				}
				db2, err = lsm.Open("db", o)
				if err != nil {
					t.Fatalf("open after repair: %v", err)
				}
			}
			defer db2.Close()
			checkLSMModel(t, db2, ops, acked)
			if err := db2.VerifyChecksums(); err != nil {
				t.Errorf("checksum verification after crash at boundary %d: %v", pt.Boundary, err)
			}
		})
	}
}
