package robustness

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"time"

	"lsmio/ckpt"
	"lsmio/internal/burst"
	"lsmio/internal/core"
	"lsmio/internal/faultfs"
	"lsmio/internal/lsm"
	"lsmio/internal/pfs"
	"lsmio/internal/resil"
	"lsmio/internal/sim"
	"lsmio/internal/vfs"
)

// degraded_test.go proves the degraded-mode striping story end-to-end
// through the real checkpoint stack (ckpt → LSM → resilient PFS
// client): commits keep succeeding with an OST fail-stopped mid-run,
// restores verify through parity reconstruction, the scrubber rebuilds
// everything the dead OST held, hedged writes bound the tail with a
// straggler OST, and the burst drain classifies its failures.

const (
	degRanks   = 4
	degSteps   = 4
	degVars    = 4
	degPerRank = 1 << 20
	degVictim  = 0
)

// degClusterConfig mirrors the ext-degraded bench cluster: small enough
// that one OST matters, write-back window tight enough that service
// time (what hedging attacks) dominates commit latency.
func degClusterConfig() pfs.Config {
	cfg := pfs.VikingConfig(degRanks)
	cfg.NumOSTs = 10
	cfg.MaxDirtyLag = 4 * time.Millisecond
	return cfg
}

func degPayload(step int64, v int, n int64) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int64(i) + step*31 + int64(v)*7)
	}
	return b
}

// degRun holds one simulated multi-rank checkpoint run's outcome.
type degRun struct {
	cluster *pfs.Cluster
	kernel  *sim.Kernel
	mgrs    []*core.Manager
	stores  []*ckpt.Store
	commits []time.Duration
}

// runDegradedCheckpoints drives degRanks ranks through degSteps
// parity-striped checkpoint steps each. slowFactor > 1 degrades the
// victim OST before the run; killMidRun fail-stops it after rank 0's
// mid-run commit. Managers are left open for validation; close with
// r.shutdown.
func runDegradedCheckpoints(t *testing.T, hedge bool, slowFactor float64, killMidRun bool) *degRun {
	t.Helper()
	k := sim.NewKernel()
	cluster := pfs.NewCluster(k, degClusterConfig())
	dumpTraceOnFailure(t, "", cluster.Obs())
	cluster.EnableResilience(pfs.Resilience{
		Hedge:  hedge,
		Parity: true,
		// Isolate hedging from the breaker's slow-trip mitigation.
		Tracker: resil.Options{SlowStrikes: 1 << 30},
	})
	if slowFactor > 1 {
		cluster.SetOSTHealth(degVictim, pfs.OSTDegraded, slowFactor)
	}
	r := &degRun{
		cluster: cluster,
		kernel:  k,
		mgrs:    make([]*core.Manager, degRanks),
		stores:  make([]*ckpt.Store, degRanks),
	}
	errs := make([]error, degRanks)
	for rank := 0; rank < degRanks; rank++ {
		rank := rank
		k.Spawn(fmt.Sprintf("deg-rank%02d", rank), func(p *sim.Proc) {
			errs[rank] = func() error {
				mgr, err := core.NewManager(fmt.Sprintf("deg/rank%03d", rank), core.ManagerOptions{
					Store: core.StoreOptions{
						FS:              cluster.ResilientClient(rank),
						Platform:        lsm.SimPlatform(k),
						Async:           true,
						WriteBufferSize: 256 << 10,
					},
					Kernel: k,
				})
				if err != nil {
					return err
				}
				r.mgrs[rank] = mgr
				r.stores[rank] = ckpt.New(mgr, ckpt.Options{})
				tp := ckpt.Direct{Store: r.stores[rank]}
				for step := int64(1); step <= degSteps; step++ {
					start := p.Now()
					w, err := tp.Begin(step)
					if err != nil {
						return fmt.Errorf("rank %d begin %d: %w", rank, step, err)
					}
					for v := 0; v < degVars; v++ {
						if err := w.Write(fmt.Sprintf("var%02d", v), degPayload(step, v, degPerRank/degVars)); err != nil {
							return fmt.Errorf("rank %d write %d: %w", rank, step, err)
						}
					}
					if err := w.Commit(); err != nil {
						return fmt.Errorf("rank %d commit %d: %w", rank, step, err)
					}
					r.commits = append(r.commits, p.Now().Sub(start))
					if killMidRun && rank == 0 && step == degSteps/2 {
						cluster.SetOSTHealth(degVictim, pfs.OSTDead, 0)
					}
				}
				return nil
			}()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	return r
}

// inSim runs fn inside a fresh simulation pass on the run's kernel (the
// cluster charges I/O to the calling process, so validation needs one).
func (r *degRun) inSim(t *testing.T, name string, fn func() error) {
	t.Helper()
	var err error
	r.kernel.Spawn(name, func(*sim.Proc) { err = fn() })
	if rerr := r.kernel.Run(); rerr != nil {
		t.Fatal(rerr)
	}
	if err != nil {
		t.Fatal(err)
	}
}

func (r *degRun) shutdown(t *testing.T) {
	t.Helper()
	r.inSim(t, "deg-close", func() error {
		for _, mgr := range r.mgrs {
			if mgr == nil {
				continue
			}
			if err := mgr.Close(); err != nil {
				return err
			}
		}
		return nil
	})
}

func checkRestored(step int64, state map[string][]byte) error {
	if step != degSteps {
		return fmt.Errorf("restored step %d, want %d", step, degSteps)
	}
	for v := 0; v < degVars; v++ {
		name := fmt.Sprintf("var%02d", v)
		if !bytes.Equal(state[name], degPayload(step, v, degPerRank/degVars)) {
			return fmt.Errorf("step %d %s corrupted", step, name)
		}
	}
	return nil
}

func p99(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[int(0.99*float64(len(s)-1)+0.5)]
}

// TestDegradedDeadOSTMidRun fail-stops an OST in the middle of a
// multi-rank checkpoint run: every later commit must succeed (parity
// absorbs the dead member), every rank must restore its final step
// complete and verified through degraded reads, and one scrub pass must
// rebuild everything the dead OST held onto spares — after which
// restores no longer need reconstruction.
func TestDegradedDeadOSTMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rank degradation simulation skipped in -short mode")
	}
	r := runDegradedCheckpoints(t, true, 0, true)

	// Complete, verified restore on every rank while the OST is dead —
	// and every earlier step (whose SSTs predate the kill and so live on
	// layouts including the dead member) still reads back verified
	// through parity reconstruction.
	r.inSim(t, "deg-restore", func() error {
		for rank, store := range r.stores {
			step, state, err := store.RestoreLatest()
			if err != nil {
				return fmt.Errorf("rank %d restore with dead OST: %w", rank, err)
			}
			if err := checkRestored(step, state); err != nil {
				return fmt.Errorf("rank %d: %w", rank, err)
			}
			for s := int64(1); s < degSteps; s++ {
				if err := store.Verify(s); err != nil {
					return fmt.Errorf("rank %d step %d unverifiable with dead OST: %w", rank, s, err)
				}
			}
		}
		return nil
	})
	st := r.cluster.Stats()
	if st.LostStripeWrites == 0 {
		t.Fatal("no writes were absorbed by parity — the dead OST was never hit")
	}
	if st.DegradedReads == 0 {
		t.Fatal("restore never used parity reconstruction")
	}

	// The scrubber rebuilds every lost stripe; nothing is unrecoverable.
	var rep pfs.ScrubReport
	r.inSim(t, "deg-scrub", func() error {
		var err error
		rep, err = r.cluster.ResilientClient(0).Scrub("deg")
		return err
	})
	if rep.Unrecoverable != 0 {
		t.Fatalf("scrub left %d units unrecoverable: %+v", rep.Unrecoverable, rep)
	}
	if rep.Repaired == 0 {
		t.Fatalf("scrub rebuilt nothing despite a dead member: %+v", rep)
	}

	// Post-rebuild restore reads clean data off the spares.
	before := r.cluster.Stats().DegradedReads
	r.inSim(t, "deg-restore-rebuilt", func() error {
		step, state, err := r.stores[0].RestoreLatest()
		if err != nil {
			return err
		}
		return checkRestored(step, state)
	})
	if after := r.cluster.Stats().DegradedReads; after != before {
		t.Fatalf("restore still degraded after rebuild (%d new reconstructions)", after-before)
	}
	r.shutdown(t)
}

// TestDegradedSlowOSTHedgedTail runs the same checkpoint workload
// healthy and with one OST serving 10x slow: hedged writes must keep
// the p99 commit stall within 2x of the healthy run.
func TestDegradedSlowOSTHedgedTail(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rank degradation simulation skipped in -short mode")
	}
	healthy := runDegradedCheckpoints(t, true, 0, false)
	healthy.shutdown(t)
	slow := runDegradedCheckpoints(t, true, 10, false)
	slow.shutdown(t)

	st := slow.cluster.Stats()
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Fatalf("straggler OST triggered no hedges (hedges=%d wins=%d)", st.Hedges, st.HedgeWins)
	}
	hp, sp := p99(healthy.commits), p99(slow.commits)
	if sp > 2*hp {
		t.Fatalf("hedged p99 commit %v exceeds 2x healthy %v", sp, hp)
	}
}

// burstOverCluster stages into a MemFS-backed store and drains into a
// cluster-backed durable store, inline (no worker) for determinism.
func burstOverCluster(k *sim.Kernel, durableFS vfs.FS) (*burst.Tier, *core.Manager, *core.Manager, error) {
	smgr, err := core.NewManager("stage", core.ManagerOptions{
		Store:  core.StoreOptions{FS: vfs.NewMemFS(), Platform: lsm.SimPlatform(k), WriteBufferSize: 64 << 10},
		Kernel: k,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	dmgr, err := core.NewManager("app", core.ManagerOptions{
		Store:  core.StoreOptions{FS: durableFS, Platform: lsm.SimPlatform(k), WriteBufferSize: 64 << 10},
		Kernel: k,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	tier := burst.New(ckpt.New(smgr, ckpt.Options{}), ckpt.New(dmgr, ckpt.Options{}), burst.Options{Kernel: k})
	return tier, smgr, dmgr, nil
}

func stageOneStep(tier *burst.Tier) error {
	c, err := tier.Begin(1)
	if err != nil {
		return err
	}
	if err := c.Write("state", bytes.Repeat([]byte{0xAB}, 64<<10)); err != nil {
		return err
	}
	return c.Commit()
}

// TestBurstDrainFailureClassification checks that the drain's error
// accounting tells a dead durable target (re-stripe) from an exhausted
// transient-retry budget (wait and retry) — and that with parity
// striping the dead-OST case doesn't fail at all.
func TestBurstDrainFailureClassification(t *testing.T) {
	cfg := pfs.Config{
		ComputeNodes:       1,
		NumOSTs:            4,
		NumOSSs:            1,
		DefaultStripeCount: 2,
		DefaultStripeSize:  16 << 10,
		RetryMax:           2,
		RetryBaseDelay:     time.Millisecond,
		RetryMaxDelay:      4 * time.Millisecond,
	}

	t.Run("target-down", func(t *testing.T) {
		k := sim.NewKernel()
		cluster := pfs.NewCluster(k, cfg)
		dumpTraceOnFailure(t, "", cluster.Obs())
		var cnt burst.Counters
		k.Spawn("main", func(*sim.Proc) {
			tier, _, _, err := burstOverCluster(k, cluster.Client(0))
			if err != nil {
				t.Error(err)
				return
			}
			if err := stageOneStep(tier); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < cfg.NumOSTs; i++ {
				cluster.SetOSTHealth(i, pfs.OSTDead, 0)
			}
			if err := tier.Sync(); err == nil {
				t.Error("drain into a dead cluster reported success")
			}
			cnt = tier.Counters()
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if cnt.DrainTargetDown == 0 || cnt.DrainTransient != 0 {
			t.Fatalf("counters = %+v, want the failure classified target-down", cnt)
		}
	})

	t.Run("transient-exhausted", func(t *testing.T) {
		k := sim.NewKernel()
		cluster := pfs.NewCluster(k, cfg)
		dumpTraceOnFailure(t, "", cluster.Obs())
		var cnt burst.Counters
		k.Spawn("main", func(*sim.Proc) {
			tier, _, _, err := burstOverCluster(k, cluster.Client(0))
			if err != nil {
				t.Error(err)
				return
			}
			if err := stageOneStep(tier); err != nil {
				t.Error(err)
				return
			}
			cluster.InjectFaults(func(write bool, ostIdx, attempt int) error {
				return &faultfs.InjectedError{Op: faultfs.OpWrite, Transient: true}
			})
			if err := tier.Sync(); err == nil {
				t.Error("drain with exhausted retries reported success")
			}
			cnt = tier.Counters()
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if cnt.DrainTransient == 0 || cnt.DrainTargetDown != 0 {
			t.Fatalf("counters = %+v, want the failure classified transient", cnt)
		}
	})

	t.Run("parity-absorbs-dead-target", func(t *testing.T) {
		k := sim.NewKernel()
		cluster := pfs.NewCluster(k, cfg)
		dumpTraceOnFailure(t, "", cluster.Obs())
		cluster.EnableResilience(pfs.Resilience{Parity: true})
		var cnt burst.Counters
		k.Spawn("main", func(*sim.Proc) {
			tier, _, dmgr, err := burstOverCluster(k, cluster.ResilientClient(0))
			if err != nil {
				t.Error(err)
				return
			}
			if err := stageOneStep(tier); err != nil {
				t.Error(err)
				return
			}
			cluster.SetOSTHealth(degVictim, pfs.OSTDead, 0)
			if err := tier.Sync(); err != nil {
				t.Errorf("parity-striped drain failed with one dead OST: %v", err)
				return
			}
			cnt = tier.Counters()
			step, state, err := ckpt.New(dmgr, ckpt.Options{}).RestoreLatest()
			if err != nil || step != 1 {
				t.Errorf("durable restore = step %d, %v", step, err)
				return
			}
			if !bytes.Equal(state["state"], bytes.Repeat([]byte{0xAB}, 64<<10)) {
				t.Error("durable payload corrupted")
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if cnt.DrainErrors != 0 || cnt.DrainedSteps != 1 {
			t.Fatalf("counters = %+v, want one clean drain", cnt)
		}
	})
}
