package robustness

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"lsmio/ckpt"
	"lsmio/internal/core"
	"lsmio/internal/lsm"
	"lsmio/internal/pfs"
	"lsmio/internal/sim"
)

// restore_chaos_test.go is the combined-fault chaos sweep for the
// self-healing restore pipeline: ONE run carries a dead OST (degraded
// parity reads), a corrupt newest step (payload overwritten after
// commit), and a crash mid-restore (hook abort at an enumerated event),
// followed by a journal-backed resume. The sweep enumerates every crash
// point; the invariants at every point are
//
//  1. the restore that finally completes returns a step whose state is
//     byte-exact some fully-committed step — never a partial or mixed
//     image;
//  2. exactly the deliberately-damaged step ends (and stays)
//     quarantined;
//  3. at least one crash point actually exercises a journal resume.

const (
	chaosSteps   = 4
	chaosVars    = 4
	chaosPerVar  = 64 << 10
	chaosVictim  = 0 // the OST that fail-stops before the restore
	chaosCorrupt = chaosSteps
	chaosWant    = chaosSteps - 1 // newest intact step
)

var errChaosCrash = errors.New("chaos: injected crash")

func chaosClusterConfig() pfs.Config {
	cfg := pfs.VikingConfig(1)
	cfg.NumOSTs = 6
	return cfg
}

// chaosOutcome reports what one crash-point scenario did.
type chaosOutcome struct {
	completed bool // the first restore finished before the crash point
	resumed   bool // the second restore resumed the crashed journal
}

// runRestoreChaos runs the combined-fault scenario with a crash
// injected at the crashAt-th restore event and verifies the invariants
// after recovery. completed=true means crashAt exceeded the total event
// count (the sweep is exhausted).
func runRestoreChaos(t *testing.T, crashAt int) chaosOutcome {
	t.Helper()
	k := sim.NewKernel()
	cluster := pfs.NewCluster(k, chaosClusterConfig())
	dumpTraceOnFailure(t, fmt.Sprintf("crash%02d", crashAt), cluster.Obs())
	cluster.EnableResilience(pfs.Resilience{Hedge: true, Parity: true})

	var out chaosOutcome
	var runErr error
	k.Spawn("chaos", func(p *sim.Proc) {
		runErr = func() error {
			mgr, err := core.NewManager("chaos/rank000", core.ManagerOptions{
				Store: core.StoreOptions{
					FS:              cluster.ResilientClient(0),
					Platform:        lsm.SimPlatform(k),
					Async:           true,
					WriteBufferSize: 256 << 10,
				},
				Kernel: k,
				Obs:    cluster.Obs(),
			})
			if err != nil {
				return err
			}
			defer mgr.Close()
			store := ckpt.New(mgr, ckpt.Options{})
			for step := int64(1); step <= chaosSteps; step++ {
				w, err := store.Begin(step)
				if err != nil {
					return fmt.Errorf("begin %d: %w", step, err)
				}
				for v := 0; v < chaosVars; v++ {
					if err := w.Write(fmt.Sprintf("var%02d", v), degPayload(step, v, chaosPerVar)); err != nil {
						return fmt.Errorf("write %d: %w", step, err)
					}
				}
				if err := w.Commit(); err != nil {
					return fmt.Errorf("commit %d: %w", step, err)
				}
			}

			// Fault 1: an OST fail-stops; parity reconstruction now
			// serves every read that striped across it.
			cluster.SetOSTHealth(chaosVictim, pfs.OSTDead, 0)
			// Fault 2: the newest step's payload is overwritten after
			// commit (CRC now disagrees with the manifest).
			if err := mgr.Put(fmt.Sprintf("ckpt/data/%016d/var01", int64(chaosCorrupt)), []byte("chaos garbage")); err != nil {
				return err
			}

			// Fault 3: crash at the crashAt-th restore event.
			var events atomic.Int64
			opts := ckpt.RestoreOptions{
				Parallel: 2,
				Journal:  true,
				Hook: func(phase string, step int64, name string) error {
					if events.Add(1) == int64(crashAt) {
						return errChaosCrash
					}
					return nil
				},
			}
			step, state, rep, err := store.Restore(opts)
			switch {
			case err == nil:
				out.completed = true
			case errors.Is(err, errChaosCrash):
				// Crashed as injected; resume from the journal.
				opts.Hook = nil
				step, state, rep, err = store.Restore(opts)
				if err != nil {
					return fmt.Errorf("resumed restore: %w", err)
				}
				out.resumed = rep.Resumed
			default:
				return fmt.Errorf("restore failed outside the injected crash: %w", err)
			}

			// Invariant 1: the restored image is byte-exact the newest
			// intact fully-committed step.
			if step != chaosWant {
				return fmt.Errorf("restored step %d, want %d", step, chaosWant)
			}
			if len(state) != chaosVars {
				return fmt.Errorf("restored %d vars, want %d", len(state), chaosVars)
			}
			for v := 0; v < chaosVars; v++ {
				name := fmt.Sprintf("var%02d", v)
				if !bytes.Equal(state[name], degPayload(step, v, chaosPerVar)) {
					return fmt.Errorf("restored %s is not step %d's committed payload", name, step)
				}
			}
			// Invariant 2: exactly the damaged step is quarantined.
			q, err := store.Quarantined()
			if err != nil {
				return err
			}
			if len(q) != 1 || q[chaosCorrupt] == "" {
				return fmt.Errorf("quarantined = %v, want exactly step %d", q, chaosCorrupt)
			}
			// The journal must be gone after a completed restore.
			if _, err := mgr.Get("ckpt/restore/journal"); !errors.Is(err, core.ErrNotFound) {
				return fmt.Errorf("restore journal left behind: %v", err)
			}
			return nil
		}()
	})
	if err := k.Run(); err != nil {
		t.Fatalf("crash point %d: kernel: %v", crashAt, err)
	}
	if runErr != nil {
		t.Fatalf("crash point %d: %v", crashAt, runErr)
	}
	return out
}

// TestRestoreChaosCombinedFaults enumerates every crash point of the
// combined-fault scenario (dead OST + corrupt step + crash mid-restore)
// until one scenario completes without reaching the injected crash.
func TestRestoreChaosCombinedFaults(t *testing.T) {
	resumes := 0
	crashes := 0
	for crashAt := 1; ; crashAt++ {
		if crashAt > 100 {
			t.Fatal("crash-point sweep did not terminate")
		}
		out := runRestoreChaos(t, crashAt)
		if out.completed {
			crashes = crashAt - 1
			break
		}
		if out.resumed {
			resumes++
		}
	}
	if crashes == 0 {
		t.Fatal("sweep injected no crashes at all")
	}
	// Invariant 3: the journal resume path was actually exercised.
	if resumes == 0 {
		t.Fatal("no crash point exercised a journal resume")
	}
	t.Logf("chaos sweep: %d crash points, %d journal resumes", crashes, resumes)
}
