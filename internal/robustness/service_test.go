package robustness

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"lsmio/internal/core"
	"lsmio/internal/lsm"
	"lsmio/internal/obs"
	"lsmio/internal/pfs"
	"lsmio/internal/resil"
	"lsmio/internal/sim"
	"lsmio/internal/svc"
)

// service_test.go is the multi-tenant service robustness sweep: a
// tenant crashing mid-commit must not hurt its neighbors or its own
// committed checkpoints, a shard rebalance under live load must not
// lose an acknowledged write, and quota exhaustion must surface as a
// typed retryable error the shared resil policy can drive to success.

const (
	svcTenants = 3
	svcBlocks  = 12
	svcBlockSz = 64 << 10
)

// svcHarness is one simulated service deployment: a shard pool hosted
// on a Lustre-like cluster, fronted over its fabric.
type svcHarness struct {
	k       *sim.Kernel
	cluster *pfs.Cluster
	reg     *obs.Registry
	s       *svc.Service
	front   *svc.Front
}

// newSvcHarness builds the service on a fresh cluster: tenants client
// nodes, shardSlots server nodes (the pool may rebalance up to that
// many shards, starting with `shards`).
func newSvcHarness(t *testing.T, shards, shardSlots int, adm svc.AdmissionConfig) *svcHarness {
	t.Helper()
	h := &svcHarness{k: sim.NewKernel(), reg: obs.NewRegistry()}
	h.cluster = pfs.NewCluster(h.k, pfs.VikingConfig(svcTenants+shardSlots))
	h.reg.SetClock(func() time.Duration { return h.k.Now().Duration() })
	var err error
	h.k.Spawn("setup", func(p *sim.Proc) {
		h.s, err = svc.New(svc.Options{
			Shards: shards,
			OpenShard: func(i int) (*core.Manager, error) {
				return core.NewManager(fmt.Sprintf("svc/shard%03d", i), core.ManagerOptions{
					Store: core.StoreOptions{
						FS:       h.cluster.Client(svcTenants + i),
						Platform: lsm.SimPlatform(h.k),
						Async:    true,
					},
					Kernel: h.k,
					Obs:    h.reg,
				})
			},
			Kernel:    h.k,
			Obs:       h.reg,
			Admission: adm,
		})
		if err != nil {
			return
		}
		nodes := make([]int, shardSlots)
		for i := range nodes {
			nodes[i] = svcTenants + i
		}
		h.front = svc.NewFront(h.s, h.cluster.Fabric(), nodes)
	})
	if runErr := h.k.Run(); runErr != nil {
		t.Fatalf("setup run: %v", runErr)
	}
	if err != nil {
		t.Fatalf("service setup: %v", err)
	}
	return h
}

func svcPayload(tenant, step, block int) []byte {
	b := make([]byte, svcBlockSz)
	for i := range b {
		b[i] = byte(i + tenant*31 + step*7 + block*13)
	}
	return b
}

func svcKey(step, block int) string {
	return fmt.Sprintf("step%03d/block%03d", step, block)
}

// TestServiceTenantCrashMidCommit kills one tenant halfway through a
// checkpoint step (no barrier, no close). The neighbors' commits and
// the victim's own earlier barriered step must survive, and a
// reconnected client for the crashed tenant must be able to resume.
func TestServiceTenantCrashMidCommit(t *testing.T) {
	h := newSvcHarness(t, 3, 3, svc.AdmissionConfig{})
	errs := make([]error, svcTenants)
	for tn := 0; tn < svcTenants; tn++ {
		tn := tn
		h.k.Spawn(fmt.Sprintf("tenant%d", tn), func(p *sim.Proc) {
			c := h.front.Connect(fmt.Sprintf("tenant%d", tn), tn)
			for step := 0; step < 2; step++ {
				for b := 0; b < svcBlocks; b++ {
					if tn == 0 && step == 1 && b == svcBlocks/2 {
						return // crash mid-commit: half a step sent, no barrier
					}
					if err := c.Put(svcKey(step, b), svcPayload(tn, step, b)); err != nil {
						errs[tn] = err
						return
					}
				}
				if err := c.Barrier(); err != nil {
					errs[tn] = err
					return
				}
			}
		})
	}
	if err := h.k.Run(); err != nil {
		t.Fatalf("load run: %v", err)
	}
	for tn, err := range errs {
		if err != nil {
			t.Fatalf("tenant %d: %v", tn, err)
		}
	}

	var verifyErr error
	h.k.Spawn("verify", func(p *sim.Proc) {
		defer func() {
			if verifyErr == nil {
				verifyErr = h.s.Close()
			}
		}()
		// Survivors: every block of both steps, exact payloads.
		for tn := 1; tn < svcTenants; tn++ {
			c := h.front.Connect(fmt.Sprintf("tenant%d", tn), tn)
			for step := 0; step < 2; step++ {
				for b := 0; b < svcBlocks; b++ {
					v, err := c.Get(svcKey(step, b))
					if err != nil {
						verifyErr = fmt.Errorf("tenant %d %s: %w", tn, svcKey(step, b), err)
						return
					}
					if !bytes.Equal(v, svcPayload(tn, step, b)) {
						verifyErr = fmt.Errorf("tenant %d %s: corrupt payload", tn, svcKey(step, b))
						return
					}
				}
			}
		}
		// The crashed tenant reconnects: its barriered step 0 is intact
		// and the service accepts new commits from it.
		c := h.front.Connect("tenant0", 0)
		for b := 0; b < svcBlocks; b++ {
			v, err := c.Get(svcKey(0, b))
			if err != nil {
				verifyErr = fmt.Errorf("crashed tenant step0 %s: %w", svcKey(0, b), err)
				return
			}
			if !bytes.Equal(v, svcPayload(0, 0, b)) {
				verifyErr = fmt.Errorf("crashed tenant step0 %s: corrupt payload", svcKey(0, b))
				return
			}
		}
		if err := c.Put("resume", []byte("ok")); err != nil {
			verifyErr = fmt.Errorf("resume put: %w", err)
			return
		}
		if err := c.Barrier(); err != nil {
			verifyErr = fmt.Errorf("resume barrier: %w", err)
			return
		}
	})
	if err := h.k.Run(); err != nil {
		t.Fatalf("verify run: %v", err)
	}
	if verifyErr != nil {
		t.Fatal(verifyErr)
	}
}

// TestServiceRebalanceUnderLoad grows the shard pool from 2 to 4 while
// three tenants commit continuously over the fabric; every write that
// was acknowledged before the run ended must read back exactly.
func TestServiceRebalanceUnderLoad(t *testing.T) {
	h := newSvcHarness(t, 2, 4, svc.AdmissionConfig{})
	type acked struct{ tenant, step, block int }
	var log []acked
	errs := make([]error, svcTenants+1)
	for tn := 0; tn < svcTenants; tn++ {
		tn := tn
		h.k.Spawn(fmt.Sprintf("tenant%d", tn), func(p *sim.Proc) {
			c := h.front.Connect(fmt.Sprintf("tenant%d", tn), tn)
			for step := 0; step < 4; step++ {
				for b := 0; b < svcBlocks; b++ {
					if err := c.Put(svcKey(step, b), svcPayload(tn, step, b)); err != nil {
						errs[tn] = err
						return
					}
				}
				if err := c.Barrier(); err != nil {
					errs[tn] = err
					return
				}
				for b := 0; b < svcBlocks; b++ {
					log = append(log, acked{tn, step, b})
				}
			}
		})
	}
	h.k.Spawn("rebalancer", func(p *sim.Proc) {
		p.Sleep(2 * time.Millisecond)
		errs[svcTenants] = h.s.Rebalance(4)
	})
	if err := h.k.Run(); err != nil {
		t.Fatalf("load run: %v", err)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("proc %d: %v", i, err)
		}
	}
	if got := h.s.Shards(); got != 4 {
		t.Fatalf("shard count after rebalance = %d, want 4", got)
	}
	snap := h.reg.Snapshot()
	if snap.Counters["svc.rebalances"] != 1 {
		t.Fatalf("rebalances counter = %d, want 1", snap.Counters["svc.rebalances"])
	}

	var verifyErr error
	h.k.Spawn("verify", func(p *sim.Proc) {
		clients := make([]*svc.Client, svcTenants)
		for tn := range clients {
			clients[tn] = h.front.Connect(fmt.Sprintf("tenant%d", tn), tn)
		}
		for _, a := range log {
			v, err := clients[a.tenant].Get(svcKey(a.step, a.block))
			if err != nil {
				verifyErr = fmt.Errorf("tenant %d %s lost after rebalance: %w", a.tenant, svcKey(a.step, a.block), err)
				return
			}
			if !bytes.Equal(v, svcPayload(a.tenant, a.step, a.block)) {
				verifyErr = fmt.Errorf("tenant %d %s corrupt after rebalance", a.tenant, svcKey(a.step, a.block))
				return
			}
		}
		verifyErr = h.s.Close()
	})
	if err := h.k.Run(); err != nil {
		t.Fatalf("verify run: %v", err)
	}
	if verifyErr != nil {
		t.Fatal(verifyErr)
	}
}

// procClk adapts a simulation process to resil.Clock.
type procClk struct{ p *sim.Proc }

func (c procClk) Now() time.Duration    { return c.p.Now().Duration() }
func (c procClk) Sleep(d time.Duration) { c.p.Sleep(d) }

// TestServiceQuotaExhaustionRetry floods a tightly capped tenant until
// admission rejects, then shows the rejection is a typed, transient,
// retryable error: resil.Classify maps it to ClassTransient, RetryAfter
// is advertised, and the shared retry policy drives the same request to
// success once the bucket drains.
func TestServiceQuotaExhaustionRetry(t *testing.T) {
	h := newSvcHarness(t, 2, 2, svc.AdmissionConfig{
		CapacityBytesPerSec: 4 << 20,
		MaxWait:             time.Millisecond,
	})
	var qe *svc.QuotaError
	var retryErr error
	retries := 0
	h.k.Spawn("greedy", func(p *sim.Proc) {
		c := h.front.Connect("greedy", 0)
		payload := svcPayload(0, 0, 0)
		var err error
		for i := 0; i < 4096; i++ {
			if err = c.Put(svcKey(0, i), payload); err != nil {
				break
			}
		}
		if !errors.As(err, &qe) {
			retryErr = fmt.Errorf("flood never hit the quota (last err: %v)", err)
			return
		}
		if cls := resil.Classify(err); cls != resil.ClassTransient {
			retryErr = fmt.Errorf("quota rejection classified %v, want transient", cls)
			return
		}
		if qe.RetryAfter <= 0 {
			retryErr = fmt.Errorf("quota rejection advertises no retry delay: %+v", qe)
			return
		}
		// The unified retry policy turns the advertised backoff into an
		// eventual admit without any service-specific handling.
		pol := resil.Policy{MaxRetries: 64, BaseDelay: qe.RetryAfter, MaxDelay: qe.RetryAfter}
		retryErr = pol.Do(nil, procClk{p}, 1, func(attempt int) error {
			if attempt > 0 {
				retries = attempt
			}
			return c.Put("after-quota", payload)
		})
		if retryErr == nil {
			retryErr = c.Barrier()
		}
	})
	if err := h.k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if retryErr != nil {
		t.Fatal(retryErr)
	}
	if retries == 0 {
		t.Fatal("retry policy succeeded without ever backing off")
	}
	if h.reg.Snapshot().Counters["svc.tenant.greedy.quota_rejects"] == 0 {
		t.Fatal("quota_rejects counter never incremented")
	}
}
