package robustness

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"lsmio/internal/obs"
)

// dumpTraceOnFailure registers a cleanup that writes the registry's
// bounded trace ring to TRACE_<test>.txt in the package directory when
// the test fails. The robustness sweeps drive long fault-injection
// scenarios whose failures are hard to reconstruct from assertion
// messages alone; the event ring (flushes, compactions, stalls, hedges,
// breaker trips, drains, quarantines) is the post-mortem, and CI
// uploads the dumps as artifacts.
func dumpTraceOnFailure(t *testing.T, label string, reg *obs.Registry) {
	t.Helper()
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		name := t.Name()
		if label != "" {
			name += "_" + label
		}
		name = "TRACE_" + strings.NewReplacer("/", "_", " ", "_").Replace(name) + ".txt"
		f, err := os.Create(name)
		if err != nil {
			t.Logf("trace dump: %v", err)
			return
		}
		defer f.Close()
		if err := reg.Trace().Dump(f); err != nil {
			t.Logf("trace dump: %v", err)
			return
		}
		// Append the full metrics table (per-tenant svc counters, shard
		// states, supervisor restart/MTTR stats) — the chaos sweeps'
		// failures usually need both the event ring and the counters.
		fmt.Fprintf(f, "\n---- metrics snapshot ----\n")
		if err := reg.Snapshot().WriteTable(f); err != nil {
			t.Logf("metrics dump: %v", err)
		}
		t.Logf("trace ring dumped to %s (%d events, %d dropped)",
			name, reg.Trace().Len(), reg.Trace().Dropped())
	})
}
