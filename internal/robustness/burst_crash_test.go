package robustness

import (
	"bytes"
	"fmt"
	"testing"

	"lsmio/ckpt"
	"lsmio/internal/burst"
	"lsmio/internal/core"
	"lsmio/internal/faultfs"
	"lsmio/internal/vfs"
)

// burstAck records one acknowledgment the staging tier gave the
// application: step was staged-consistent (or drained durable) by
// boundary `after`.
type burstAck struct {
	step  int64
	after int
}

// burstStores opens the staging and durable checkpoint stores over one
// shared filesystem (distinct directories), as a single-node burst
// deployment would lay them out on a node-local disk.
func burstStores(fs vfs.FS) (*ckpt.Store, *ckpt.Store, *core.Manager, *core.Manager, error) {
	smgr, err := core.NewManager("stage", core.ManagerOptions{
		Store: core.StoreOptions{FS: fs, WriteBufferSize: 8 << 10},
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	dmgr, err := core.NewManager("app", core.ManagerOptions{
		Store: core.StoreOptions{FS: fs, WriteBufferSize: 8 << 10},
	})
	if err != nil {
		smgr.Close()
		return nil, nil, nil, nil, err
	}
	return ckpt.New(smgr, ckpt.Options{}), ckpt.New(dmgr, ckpt.Options{}), smgr, dmgr, nil
}

// TestBurstDrainCrashSweep drives staged commits and inline drains
// through the burst tier's full pipeline — stage barrier, stage
// manifest, durable copy, durable barrier, durable manifest, staged
// drop — and proves that a crash at EVERY durability boundary recovers
// without panics, without losing an acknowledged step, and without
// ever exposing a partially-drained image to RestoreLatest.
func TestBurstDrainCrashSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-point enumeration sweep skipped in -short mode")
	}
	ffs := faultfs.New(vfs.NewMemFS())
	if err := ffs.StartRecording(); err != nil {
		t.Fatal(err)
	}

	staging, durable, smgr, dmgr, err := burstStores(ffs)
	if err != nil {
		t.Fatal(err)
	}
	dumpTraceOnFailure(t, "staging", smgr.Obs())
	dumpTraceOnFailure(t, "durable", dmgr.Obs())
	tier := burst.New(staging, durable, burst.Options{}) // inline drain: deterministic

	allSteps := map[int64]map[string][]byte{}
	var stagedAcks, durableAcks []burstAck
	for step := int64(1); step <= 4; step++ {
		vars := map[string][]byte{
			"temperature": bytes.Repeat([]byte{byte(step)}, 700),
			"pressure":    []byte(fmt.Sprintf("p-step-%d-%s", step, pad(350))),
		}
		allSteps[step] = vars
		c, err := tier.Begin(step)
		if err != nil {
			t.Fatalf("begin %d: %v", step, err)
		}
		for name, data := range vars {
			if err := c.Write(name, data); err != nil {
				t.Fatalf("write %d/%s: %v", step, name, err)
			}
		}
		if err := c.Commit(); err != nil {
			t.Fatalf("commit %d: %v", step, err)
		}
		stagedAcks = append(stagedAcks, burstAck{step: step, after: ffs.Boundaries()})
		// Every second step the application demands durability, which
		// drains everything staged so far through the pipeline.
		if step%2 == 0 {
			if err := tier.WaitDurable(step); err != nil {
				t.Fatalf("wait durable %d: %v", step, err)
			}
			durableAcks = append(durableAcks, burstAck{step: step, after: ffs.Boundaries()})
		}
	}
	if err := tier.Close(); err != nil {
		t.Fatal(err)
	}
	if err := smgr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dmgr.Close(); err != nil {
		t.Fatal(err)
	}
	ffs.StopRecording()

	pts := ffs.CrashPoints()
	if len(pts) < 12 {
		t.Fatalf("workload crossed only %d boundaries; sweep too weak", len(pts))
	}

	for _, pt := range pts {
		pt := pt
		t.Run(fmt.Sprintf("boundary%03d_%s", pt.Boundary, pt.Op), func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic recovering at boundary %d (%s %s): %v",
						pt.Boundary, pt.Op, pt.Path, r)
				}
			}()
			state, err := ffs.StateAfter(pt.Boundary)
			if err != nil {
				t.Fatalf("StateAfter: %v", err)
			}
			// Newest acknowledgments the crash point must honour. A
			// staged ack is durable here too: the staging store lives
			// on the same (crash-surviving) filesystem and its Commit
			// barriers precede the ack.
			var wantStaged, wantDurable int64
			for _, a := range stagedAcks {
				if a.after <= pt.Boundary {
					wantStaged = a.step
				}
			}
			for _, a := range durableAcks {
				if a.after <= pt.Boundary {
					wantDurable = a.step
				}
			}

			staging2, durable2, smgr2, dmgr2, err := burstStores(state)
			if err != nil {
				if wantStaged != 0 {
					t.Fatalf("reopen failed with step %d staged-acked: %v", wantStaged, err)
				}
				return // nothing promised yet; clean error is fine
			}
			defer smgr2.Close()
			defer dmgr2.Close()

			// The durable store alone must never expose a
			// partially-drained step: anything its RestoreLatest
			// returns is a complete committed image.
			if dStep, dVars, dErr := durable2.RestoreLatest(); dErr == nil {
				checkWholeImage(t, "durable", dStep, dVars, allSteps)
				if dStep < wantDurable {
					t.Fatalf("durable tier rolled back to %d, acked %d", dStep, wantDurable)
				}
			} else if wantDurable != 0 {
				t.Fatalf("durable RestoreLatest with step %d durable-acked: %v", wantDurable, dErr)
			}

			tier2 := burst.New(staging2, durable2, burst.Options{})
			if err := tier2.Recover(); err != nil {
				t.Fatalf("tier recover: %v", err)
			}
			step, restored, err := tier2.RestoreLatest()
			if err != nil {
				if wantStaged == 0 && err == ckpt.ErrNoCheckpoint {
					return
				}
				t.Fatalf("RestoreLatest with step %d staged-acked: %v", wantStaged, err)
			}
			if step < wantStaged {
				t.Fatalf("restored step %d, want >= %d (silent rollback)", step, wantStaged)
			}
			checkWholeImage(t, "tier", step, restored, allSteps)

			// The re-queued drain pipeline must complete: after Sync,
			// the durable store holds the restored step.
			if err := tier2.Sync(); err != nil {
				t.Fatalf("drain after recovery: %v", err)
			}
			dStep, dVars, dErr := durable2.RestoreLatest()
			if dErr != nil {
				t.Fatalf("durable RestoreLatest after recovered drain: %v", dErr)
			}
			if dStep < step {
				t.Fatalf("recovered drain left durable at %d, tier restored %d", dStep, step)
			}
			checkWholeImage(t, "durable-after-drain", dStep, dVars, allSteps)
		})
	}
}

// checkWholeImage asserts a restored image is exactly one committed
// step's full variable set — never a partial or mixed image.
func checkWholeImage(t *testing.T, tier string, step int64, restored map[string][]byte, allSteps map[int64]map[string][]byte) {
	t.Helper()
	want, known := allSteps[step]
	if !known {
		t.Fatalf("%s restored unknown step %d", tier, step)
	}
	if len(restored) != len(want) {
		t.Fatalf("%s step %d restored %d vars, want %d (partial image)",
			tier, step, len(restored), len(want))
	}
	for name, data := range want {
		if !bytes.Equal(restored[name], data) {
			t.Fatalf("%s step %d variable %q corrupted or mixed across steps", tier, step, name)
		}
	}
}
