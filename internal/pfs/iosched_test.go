package pfs

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"time"

	"lsmio/internal/iosched"
	"lsmio/internal/sim"
)

// Regression test for the PR 10 satellite fix: ClientFS.Scrub used to
// run unthrottled and could monopolize OST bandwidth during repair,
// degrading concurrent commit latency. With the shared scheduler
// attached, scrub I/O buys lowest-class tokens and commit p99 must stay
// within the gate.
func TestScrubThrottledDoesNotDegradeCommitP99(t *testing.T) {
	cfg := Config{
		ComputeNodes:       2,
		NumOSTs:            4,
		NumOSSs:            1,
		DefaultStripeCount: 2,
		DefaultStripeSize:  64 << 10,
		OSTSeqWriteBW:      10e6, // slow OSTs so contention is visible
	}
	const (
		commitBytes = 128 << 10 // one 64K unit per OST per commit
		commits     = 60
		scrubBytes  = 2 << 20
		scrubbers   = 3
	)

	// run returns the p99 commit latency with the given scrub/throttle mix.
	run := func(withScrub, throttled bool) time.Duration {
		k := sim.NewKernel()
		c := NewCluster(k, cfg)
		c.EnableResilience(Resilience{Parity: true})
		var sched *iosched.Scheduler
		if throttled {
			// Budget ≈ the bandwidth one striped writer can reach (2
			// OSTs' worth); scrub's 5% share only matters while the
			// foreground class holds unexpired claims.
			sched = iosched.New(iosched.Config{BytesPerSec: 2 * cfg.OSTSeqWriteBW, Kernel: k})
			c.SetIOScheduler(sched)
		}
		if withScrub {
			// Setup phase: the parity files the scrubbers will sweep are
			// laid down before the measured window so their (foreground)
			// creation writes do not pollute the commit latencies.
			k.Spawn("prep", func(p *sim.Proc) {
				rfs := c.ResilientClient(0)
				for s := 0; s < scrubbers; s++ {
					f, err := rfs.CreateStriped(fmt.Sprintf("ckpt%d/par.dat", s), 2, 64<<10)
					if err != nil {
						t.Errorf("scrub create: %v", err)
						return
					}
					f.Write(pattern(scrubBytes))
					f.Sync()
					f.Close()
				}
			})
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
		}
		var lats []time.Duration
		done := false // single-threaded sim: plain flag is safe
		k.Spawn("commit", func(p *sim.Proc) {
			defer func() { done = true }()
			fs := c.Client(1)
			buf := bytes.Repeat([]byte{0xab}, commitBytes)
			for i := 0; i < commits; i++ {
				start := p.Now().Duration()
				// Stands in for the engine's WAL acquire: it keeps the
				// Foreground class active so the scheduler squeezes scrub
				// while commits are in flight. Nil-safe when unthrottled.
				sched.Acquire(iosched.Foreground, commitBytes)
				f, err := fs.CreateStriped(fmt.Sprintf("app/step%03d.dat", i), 2, 64<<10)
				if err != nil {
					t.Errorf("create: %v", err)
					return
				}
				f.Write(buf)
				if err := f.Sync(); err != nil {
					t.Errorf("sync: %v", err)
					return
				}
				f.Close()
				lats = append(lats, p.Now().Duration()-start)
				// Varied think time so the commit cadence cannot phase-lock
				// with the scrubbers' read loops.
				p.Sleep(5*time.Millisecond + time.Duration(i%7)*time.Millisecond)
			}
		})
		if withScrub {
			for s := 0; s < scrubbers; s++ {
				dir := fmt.Sprintf("ckpt%d", s)
				k.Spawn("scrub-"+dir, func(p *sim.Proc) {
					rfs := c.ResilientClient(0)
					for !done {
						// Each pass re-reads every stripe unit: a continuous
						// verify load for as long as the commits run. All
						// scrubbers draw from the one Scrub class, so the
						// throttle caps their combined issue rate.
						if _, err := rfs.Scrub(dir); err != nil {
							t.Errorf("scrub: %v", err)
							return
						}
					}
				})
			}
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if sched != nil {
			snap := sched.Obs().Snapshot()
			t.Logf("sched: scrub grants=%d wait=%v fg grants=%d fg wait=%v",
				snap.Counters["iosched.scrub.grants"],
				time.Duration(snap.Counters["iosched.scrub.wait_nanos"]),
				snap.Counters["iosched.foreground.grants"],
				time.Duration(snap.Counters["iosched.foreground.wait_nanos"]))
		}
		if len(lats) != commits {
			t.Fatalf("commit proc recorded %d/%d latencies", len(lats), commits)
		}
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		return lats[len(lats)*99/100]
	}

	baseline := run(false, false)   // no scrub at all
	unthrottled := run(true, false) // the pre-fix behavior
	throttled := run(true, true)    // scrub through the Scrub class
	t.Logf("commit p99: baseline=%v unthrottled-scrub=%v throttled-scrub=%v",
		baseline, unthrottled, throttled)

	// The unthrottled run must actually reproduce the regression —
	// otherwise the assertions below would pass vacuously.
	if unthrottled < baseline*3/2 {
		t.Fatalf("scrub load did not degrade commits (p99 %v vs baseline %v); test lost its teeth", unthrottled, baseline)
	}
	if throttled >= unthrottled {
		t.Errorf("throttled scrub p99 %v not better than unthrottled %v", throttled, unthrottled)
	}
	// The gate: with scrub throttled, commit p99 stays within 2x of the
	// scrub-free baseline (foreground pacing is accounted, so a modest
	// overhead is expected; monopolization is not).
	if throttled > baseline*2 {
		t.Errorf("throttled scrub still degrades commit p99 beyond the gate: %v > 2x baseline %v", throttled, baseline)
	}
}
