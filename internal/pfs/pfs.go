// Package pfs simulates a Lustre-like parallel file system: a metadata
// server (MDS), object storage servers (OSS) fronting object storage
// targets (OSTs) built from RAID-ed 7.2k-rpm disks, RAID-0 striping across
// OSTs, client-side write-back caching with bounded dirty data, and
// per-object extent locks whose ownership migrates between writing clients.
//
// It implements vfs.FS per compute node, so unmodified storage code (the
// LSM engine, the HDF5- and ADIOS2-like writers) runs against it; file
// bytes are really stored (in memory) while every operation charges
// virtual time to the calling simulation process through the
// discrete-event kernel.
//
// The performance model is mechanistic rather than curve-fit:
//
//   - Each OST is a serial device with sequential bandwidth, a positioning
//     (seek) penalty whenever a request is not contiguous with the previous
//     one, and a fixed per-request overhead. Requests are serviced in
//     arrival order via a busy-until clock.
//   - Writes from a client complete asynchronously (Lustre write-back
//     pages): the client pays only CPU + network, and is stalled when the
//     device lags more than MaxDirtyLag behind (the dirty-page limit).
//     Sync/Barrier waits for device completion.
//   - A write to a (file, OST) object by a client that is not the current
//     extent-lock holder pays a lock-migration penalty — the mechanism
//     behind shared-file (N-to-1) write collapse on Lustre once more ranks
//     than stripes write a file.
//   - Reads are synchronous and also flow through the OST clock.
//
// See DESIGN.md §5 for the simulation-vs-reality boundary.
package pfs

import (
	"time"
)

// Config describes the cluster's storage system and cost model.
type Config struct {
	// ComputeNodes is the number of client (compute) nodes.
	ComputeNodes int
	// NumOSTs and NumOSSs shape the storage backend. OST i is served by
	// OSS (i mod NumOSSs).
	NumOSTs int
	NumOSSs int

	// DefaultStripeCount and DefaultStripeSize are applied to files whose
	// creator does not set an explicit layout (lfs setstripe equivalent).
	DefaultStripeCount int
	DefaultStripeSize  int64

	// OSTSeqWriteBW / OSTSeqReadBW are per-OST streaming bandwidths in
	// bytes/second (a 10-disk NLSAS RAID array).
	OSTSeqWriteBW float64
	OSTSeqReadBW  float64
	// WriteSeek / ReadSeek are charged when a request is not contiguous
	// with the previous request serviced by the OST.
	WriteSeek time.Duration
	ReadSeek  time.Duration
	// OSTOpOverhead is the fixed per-request service cost.
	OSTOpOverhead time.Duration
	// CoalesceWindow is the gap (bytes, either direction) within which a
	// request still counts as continuing a stream (elevator/merge
	// behaviour of the block layer and controller cache).
	CoalesceWindow int64
	// OSTStreamCache is how many concurrent sequential streams an OST's
	// controller tracks before stream switches start costing seeks.
	OSTStreamCache int
	// ReadAhead is the client read-ahead window: sequential reads on a
	// handle fetch this much per RPC and later reads within the window
	// are served from the client cache.
	ReadAhead int64
	// LockSwitch is the extent-lock migration penalty paid by a write when
	// another client was the last writer of the same (file, OST) object.
	LockSwitch time.Duration

	// OSSBandwidth is the per-OSS backend bandwidth (bytes/second).
	OSSBandwidth float64

	// MDSOpTime is the metadata service time per namespace operation.
	MDSOpTime time.Duration

	// ClientRPCOverhead is the client-side fixed cost per I/O RPC.
	ClientRPCOverhead time.Duration
	// ClientStreamBW models the client's per-byte data-path cost (page
	// cache copy + checksum + RPC build), bytes/second.
	ClientStreamBW float64
	// MaxDirtyLag bounds how far a client may run ahead of the devices
	// before being stalled (the dirty-pages limit expressed as time).
	MaxDirtyLag time.Duration
	// MaxRPCSize is the client write-back coalescing limit: contiguous
	// writes on one file handle merge into RPCs of up to this size before
	// hitting the wire (Lustre's max_pages_per_rpc behaviour).
	MaxRPCSize int64

	// NetLatency / NetBandwidth / NetMaxPacket configure the fabric.
	NetLatency   time.Duration
	NetBandwidth float64
	NetMaxPacket int64

	// RetryMax is how many times a failed OST RPC is retried when the
	// failure is transient (injected via Cluster.InjectFaults). 0 uses the
	// default (5); negative disables retries. Permanent failures are never
	// retried.
	RetryMax int
	// RetryBaseDelay is the first retry's backoff; each further retry
	// doubles it, capped at RetryMaxDelay. A deterministic jitter in
	// [50%, 150%) is applied, charged on the virtual clock.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
}

// VikingConfig models the University of York Viking system from the
// paper's Table 4: 45 OSTs of 10×8 TB 7,200 rpm NLSAS disks behind 2 OSSs,
// with up to 48 client nodes. Cost constants are calibrated so the
// benchmark harness reproduces the paper's relative results (EXPERIMENTS.md
// records the calibration).
func VikingConfig(computeNodes int) Config {
	return Config{
		ComputeNodes:       computeNodes,
		NumOSTs:            45,
		NumOSSs:            2,
		DefaultStripeCount: 4,
		DefaultStripeSize:  1 << 20,
		OSTSeqWriteBW:      500e6,
		OSTSeqReadBW:       550e6,
		WriteSeek:          5 * time.Millisecond,
		ReadSeek:           3 * time.Millisecond,
		OSTOpOverhead:      100 * time.Microsecond,
		CoalesceWindow:     1 << 20,
		OSTStreamCache:     3,
		ReadAhead:          4 << 20,
		LockSwitch:         900 * time.Microsecond,
		OSSBandwidth:       6e9,
		MDSOpTime:          200 * time.Microsecond,
		ClientRPCOverhead:  15 * time.Microsecond,
		ClientStreamBW:     500e6,
		MaxDirtyLag:        64 * time.Millisecond,
		MaxRPCSize:         4 << 20,
		NetLatency:         20 * time.Microsecond,
		NetBandwidth:       10e9,
		NetMaxPacket:       4 << 20,
	}
}

// NVMeConfig models the same cluster re-equipped with an NVMe flash tier
// (the "differently constructed file systems" question the paper's §5.1
// raises): near-zero positioning cost, much higher per-OST bandwidth, and
// a higher OSS backend to match. Extent-lock semantics are unchanged —
// they are a file-system property, not a media property.
func NVMeConfig(computeNodes int) Config {
	cfg := VikingConfig(computeNodes)
	cfg.OSTSeqWriteBW = 3e9
	cfg.OSTSeqReadBW = 3.5e9
	cfg.WriteSeek = 30 * time.Microsecond
	cfg.ReadSeek = 20 * time.Microsecond
	cfg.OSTOpOverhead = 25 * time.Microsecond
	cfg.OSTStreamCache = 64 // flash does not care about stream count
	cfg.OSSBandwidth = 20e9
	return cfg
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.ComputeNodes <= 0 {
		out.ComputeNodes = 1
	}
	if out.NumOSTs <= 0 {
		out.NumOSTs = 4
	}
	if out.NumOSSs <= 0 {
		out.NumOSSs = 1
	}
	if out.DefaultStripeCount <= 0 {
		out.DefaultStripeCount = 1
	}
	if out.DefaultStripeCount > out.NumOSTs {
		out.DefaultStripeCount = out.NumOSTs
	}
	if out.DefaultStripeSize <= 0 {
		out.DefaultStripeSize = 1 << 20
	}
	if out.OSTSeqWriteBW <= 0 {
		out.OSTSeqWriteBW = 500e6
	}
	if out.OSTSeqReadBW <= 0 {
		out.OSTSeqReadBW = out.OSTSeqWriteBW
	}
	if out.OSSBandwidth <= 0 {
		out.OSSBandwidth = 6e9
	}
	if out.ClientStreamBW <= 0 {
		out.ClientStreamBW = 500e6
	}
	if out.MaxDirtyLag <= 0 {
		out.MaxDirtyLag = 64 * time.Millisecond
	}
	if out.NetBandwidth <= 0 {
		out.NetBandwidth = 10e9
	}
	if out.NetLatency <= 0 {
		out.NetLatency = 20 * time.Microsecond
	}
	if out.CoalesceWindow <= 0 {
		out.CoalesceWindow = 1 << 20
	}
	if out.MaxRPCSize <= 0 {
		out.MaxRPCSize = 4 << 20
	}
	if out.OSTStreamCache <= 0 {
		out.OSTStreamCache = 3
	}
	if out.ReadAhead <= 0 {
		out.ReadAhead = 4 << 20
	}
	if out.RetryMax == 0 {
		out.RetryMax = 5
	} else if out.RetryMax < 0 {
		out.RetryMax = 0
	}
	if out.RetryBaseDelay <= 0 {
		out.RetryBaseDelay = 500 * time.Microsecond
	}
	if out.RetryMaxDelay <= 0 {
		out.RetryMaxDelay = 50 * time.Millisecond
	}
	return out
}

// Stats aggregates what the storage system did, for the harness and tests.
// It is a point-in-time snapshot taken by Cluster.Stats; the live counters
// are atomic, so concurrent clients (e.g. app ranks plus the burst-buffer
// drain worker in go-mode) may update and read them under -race.
type Stats struct {
	BytesWritten int64
	BytesRead    int64
	WriteOps     int64
	ReadOps      int64
	Seeks        int64
	LockSwitches int64
	MetadataOps  int64
	ClientStalls int64
	// Retries counts RPC attempts repeated after a transient fault;
	// FaultsInjected counts every fault delivered by the InjectFaults hook.
	Retries        int64
	FaultsInjected int64

	// Resilience counters (all zero unless EnableResilience was called or
	// an OST health state was set; see resilience.go).
	//
	// Hedges counts stripe writes duplicated to a spare OST after the
	// hedge delay; HedgeWins counts those where the spare finished first.
	Hedges    int64
	HedgeWins int64
	// DegradedReads/DegradedReadBytes count reads served by parity
	// reconstruction because a stripe member was dead or lost.
	DegradedReads     int64
	DegradedReadBytes int64
	// ParityBytesWritten is the extra parity traffic of K+1 layouts.
	ParityBytesWritten int64
	// LostStripeWrites counts stripe writes absorbed by parity because the
	// member OST was dead (the commit succeeded without that member).
	LostStripeWrites int64
	// DegradedLayouts counts layouts allocated while skipping at least one
	// dead or breakered OST (degraded-mode re-striping).
	DegradedLayouts int64
	// Scrub outcome counters (stripe units checked by ClientFS.Scrub).
	ScrubVerified      int64
	ScrubRepaired      int64
	ScrubUnrecoverable int64
}
