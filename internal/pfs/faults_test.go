package pfs

import (
	"errors"
	"strings"
	"testing"
	"time"

	"lsmio/internal/faultfs"
	"lsmio/internal/sim"
)

// faultTestConfig is a small cluster with tight, known retry knobs.
func faultTestConfig() Config {
	return Config{
		ComputeNodes:       1,
		NumOSTs:            2,
		NumOSSs:            1,
		DefaultStripeCount: 1,
		RetryMax:           3,
		RetryBaseDelay:     time.Millisecond,
		RetryMaxDelay:      8 * time.Millisecond,
	}
}

func TestTransientWriteFaultIsRetried(t *testing.T) {
	c := runOnCluster(t, faultTestConfig(), func(c *Cluster, fs *ClientFS) {
		fails := 2
		c.InjectFaults(func(write bool, ostIdx, attempt int) error {
			if write && fails > 0 {
				fails--
				return &faultfs.InjectedError{Op: faultfs.OpWrite, Transient: true}
			}
			return nil
		})
		f, err := fs.Create("ckpt.dat")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		if _, err := f.Write(make([]byte, 4096)); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		if err := f.Sync(); err != nil {
			t.Errorf("sync after transient faults: %v", err)
		}
		if err := f.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	st := c.Stats()
	if st.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", st.Retries)
	}
	if st.FaultsInjected != 2 {
		t.Fatalf("FaultsInjected = %d, want 2", st.FaultsInjected)
	}
}

func TestPermanentWriteFaultSurfacesImmediately(t *testing.T) {
	c := runOnCluster(t, faultTestConfig(), func(c *Cluster, fs *ClientFS) {
		c.InjectFaults(func(write bool, ostIdx, attempt int) error {
			if write {
				return &faultfs.InjectedError{Op: faultfs.OpWrite, Transient: false}
			}
			return nil
		})
		f, err := fs.Create("ckpt.dat")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		f.Write(make([]byte, 4096))
		err = f.Sync()
		if err == nil {
			t.Error("sync succeeded despite permanent OST fault")
			return
		}
		if !errors.Is(err, faultfs.ErrInjected) {
			t.Errorf("error does not unwrap to ErrInjected: %v", err)
		}
		if !strings.Contains(err.Error(), "after 1 attempt") {
			t.Errorf("permanent fault was retried: %v", err)
		}
	})
	if st := c.Stats(); st.Retries != 0 {
		t.Fatalf("Retries = %d, want 0 for permanent fault", st.Retries)
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	cfg := faultTestConfig()
	var elapsed time.Duration
	c := runOnCluster(t, cfg, func(c *Cluster, fs *ClientFS) {
		c.InjectFaults(func(write bool, ostIdx, attempt int) error {
			if write {
				return &faultfs.InjectedError{Op: faultfs.OpWrite, Transient: true}
			}
			return nil
		})
		f, err := fs.Create("ckpt.dat")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		f.Write(make([]byte, 4096))
		p := c.Kernel().Current()
		start := p.Now()
		err = f.Sync()
		elapsed = p.Now().Sub(start)
		if err == nil {
			t.Error("sync succeeded with every attempt faulting")
			return
		}
		if !errors.Is(err, faultfs.ErrInjected) {
			t.Errorf("error does not unwrap to ErrInjected: %v", err)
		}
		if !strings.Contains(err.Error(), "after 4 attempt") {
			t.Errorf("want failure after RetryMax+1 = 4 attempts, got: %v", err)
		}
	})
	st := c.Stats()
	if st.Retries != int64(cfg.RetryMax) {
		t.Fatalf("Retries = %d, want %d", st.Retries, cfg.RetryMax)
	}
	// Backoff is charged on the virtual clock: 3 retries with jitter ≥ 50%
	// of 1ms, 2ms, 4ms → at least 3.5ms of virtual time must have passed.
	if min := 3500 * time.Microsecond; elapsed < min {
		t.Fatalf("virtual time across retries = %v, want ≥ %v", elapsed, min)
	}
}

func TestTransientReadFaultIsRetried(t *testing.T) {
	c := runOnCluster(t, faultTestConfig(), func(c *Cluster, fs *ClientFS) {
		f, err := fs.Create("data")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		payload := []byte("hello, ost")
		f.Write(payload)
		if err := f.Sync(); err != nil {
			t.Errorf("sync: %v", err)
			return
		}
		fails := 1
		c.InjectFaults(func(write bool, ostIdx, attempt int) error {
			if !write && fails > 0 {
				fails--
				return &faultfs.InjectedError{Op: faultfs.OpRead, Transient: true}
			}
			return nil
		})
		buf := make([]byte, len(payload))
		if _, err := f.ReadAt(buf, 0); err != nil {
			t.Errorf("read after transient fault: %v", err)
			return
		}
		if string(buf) != string(payload) {
			t.Errorf("read %q, want %q", buf, payload)
		}
		f.Close()
	})
	if st := c.Stats(); st.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", st.Retries)
	}
}

// TestReadRetryBudgetExhaustion is the regression test for routing the
// read path through resil.Policy: a persistently flaky OST consumes the
// whole retry budget with backoff charged on the virtual clock, then
// surfaces the classified transient error — it must not succeed, must
// not retry forever, and must report every attempt.
func TestReadRetryBudgetExhaustion(t *testing.T) {
	cfg := faultTestConfig()
	var elapsed time.Duration
	c := runOnCluster(t, cfg, func(c *Cluster, fs *ClientFS) {
		f, err := fs.Create("data")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		f.Write(make([]byte, 4096))
		if err := f.Sync(); err != nil {
			t.Errorf("sync: %v", err)
			return
		}
		c.InjectFaults(func(write bool, ostIdx, attempt int) error {
			if !write {
				return &faultfs.InjectedError{Op: faultfs.OpRead, Transient: true}
			}
			return nil
		})
		p := c.Kernel().Current()
		start := p.Now()
		_, err = f.ReadAt(make([]byte, 4096), 0)
		elapsed = p.Now().Sub(start)
		if err == nil {
			t.Error("read succeeded with every attempt faulting")
			return
		}
		if !errors.Is(err, faultfs.ErrInjected) {
			t.Errorf("error does not unwrap to ErrInjected: %v", err)
		}
		if !strings.Contains(err.Error(), "after 4 attempt") {
			t.Errorf("want read failure after RetryMax+1 = 4 attempts, got: %v", err)
		}
	})
	st := c.Stats()
	if st.Retries != int64(cfg.RetryMax) {
		t.Fatalf("Retries = %d, want %d", st.Retries, cfg.RetryMax)
	}
	// Jitter floor: 3 backoffs of at least 0.5×(1ms, 2ms, 4ms).
	if min := 3500 * time.Microsecond; elapsed < min {
		t.Fatalf("virtual time across read retries = %v, want ≥ %v", elapsed, min)
	}
}

func TestBackoffIsDeterministic(t *testing.T) {
	run := func() (time.Duration, error) {
		k := sim.NewKernel()
		c := NewCluster(k, faultTestConfig())
		var elapsed time.Duration
		var syncErr error
		k.Spawn("client", func(p *sim.Proc) {
			fs := c.Client(0)
			fails := 3
			c.InjectFaults(func(write bool, ostIdx, attempt int) error {
				if write && fails > 0 {
					fails--
					return &faultfs.InjectedError{Op: faultfs.OpWrite, Transient: true}
				}
				return nil
			})
			f, err := fs.Create("x")
			if err != nil {
				syncErr = err
				return
			}
			f.Write(make([]byte, 1024))
			start := p.Now()
			syncErr = f.Sync()
			elapsed = p.Now().Sub(start)
		})
		if err := k.Run(); err != nil {
			return 0, err
		}
		return elapsed, syncErr
	}
	e1, err1 := run()
	e2, err2 := run()
	if err1 != nil || err2 != nil {
		t.Fatalf("runs errored: %v / %v", err1, err2)
	}
	if e1 != e2 {
		t.Fatalf("retry timing not deterministic: %v vs %v", e1, e2)
	}
	if e1 == 0 {
		t.Fatal("no virtual time charged for retries")
	}
}
