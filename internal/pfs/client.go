package pfs

import (
	"fmt"
	"hash/crc32"
	"path"
	"strings"
	"time"

	"lsmio/internal/sim"
	"lsmio/internal/vfs"
)

func normalize(name string) string {
	name = path.Clean(strings.TrimPrefix(name, "/"))
	if name == "" {
		name = "."
	}
	return name
}

// ClientFS is one compute node's view of the parallel file system. It
// implements vfs.FS; every operation charges virtual time to the calling
// simulation process. It is bound to a fabric endpoint (the node id).
type ClientFS struct {
	c      *Cluster
	nodeID int
	// parity makes files this client creates use K+1 XOR-parity layouts
	// (set via Cluster.ResilientClient).
	parity bool
	// latest device completion across all this client's writes, for
	// Barrier (the write-barrier LSMIO relies on).
	pending sim.Time
	// open files with possibly-unflushed write-back extents, so Barrier
	// can push them out.
	open map[*pfsFile]struct{}
}

// Client returns the filesystem client for a compute node.
func (c *Cluster) Client(nodeID int) *ClientFS {
	if nodeID < 0 || nodeID >= c.cfg.ComputeNodes {
		panic(fmt.Sprintf("pfs: node %d out of range", nodeID))
	}
	return &ClientFS{c: c, nodeID: nodeID, open: make(map[*pfsFile]struct{})}
}

var _ vfs.FS = (*ClientFS)(nil)

// Create makes a file with the directory-default striping.
func (f *ClientFS) Create(name string) (vfs.File, error) {
	return f.CreateStriped(name, 0, 0)
}

// CreateStriped makes a file with an explicit stripe count and size
// (the `lfs setstripe` equivalent; zero values use the cluster default).
func (f *ClientFS) CreateStriped(name string, stripeCount int, stripeSize int64) (vfs.File, error) {
	p := f.c.cur()
	f.c.chargeMDS(p, f.nodeID)
	name = normalize(name)
	file, err := f.c.store.Create(name)
	if err != nil {
		return nil, err
	}
	f.c.layouts[name] = f.c.newLayout(stripeCount, stripeSize, f.parity)
	return f.track(&pfsFile{fs: f, name: name, inner: file, lay: f.c.layouts[name]}), nil
}

func (f *ClientFS) track(pf *pfsFile) *pfsFile {
	f.open[pf] = struct{}{}
	return pf
}

// Open opens an existing file. Opening by another rank sees the layout the
// creator established (shared-file N-to-1 workloads rely on this).
func (f *ClientFS) Open(name string) (vfs.File, error) {
	p := f.c.cur()
	f.c.chargeMDS(p, f.nodeID)
	name = normalize(name)
	file, err := f.c.store.Open(name)
	if err != nil {
		return nil, err
	}
	lay, ok := f.c.layouts[name]
	if !ok {
		// Defensive: a file written outside the layout map (should not
		// happen) gets a default layout.
		lay = f.c.newLayout(0, 0, false)
		f.c.layouts[name] = lay
	}
	return f.track(&pfsFile{fs: f, name: name, inner: file, lay: lay}), nil
}

// Remove implements vfs.FS.
func (f *ClientFS) Remove(name string) error {
	f.c.chargeMDS(f.c.cur(), f.nodeID)
	name = normalize(name)
	if err := f.c.store.Remove(name); err != nil {
		return err
	}
	delete(f.c.layouts, name)
	return nil
}

// Rename implements vfs.FS.
func (f *ClientFS) Rename(oldName, newName string) error {
	f.c.chargeMDS(f.c.cur(), f.nodeID)
	oldName, newName = normalize(oldName), normalize(newName)
	if err := f.c.store.Rename(oldName, newName); err != nil {
		return err
	}
	if lay, ok := f.c.layouts[oldName]; ok {
		delete(f.c.layouts, oldName)
		f.c.layouts[newName] = lay
	}
	return nil
}

// MkdirAll implements vfs.FS.
func (f *ClientFS) MkdirAll(dir string) error {
	f.c.chargeMDS(f.c.cur(), f.nodeID)
	return f.c.store.MkdirAll(dir)
}

// List implements vfs.FS.
func (f *ClientFS) List(dir string) ([]string, error) {
	f.c.chargeMDS(f.c.cur(), f.nodeID)
	return f.c.store.List(dir)
}

// Stat implements vfs.FS.
func (f *ClientFS) Stat(name string) (int64, error) {
	f.c.chargeMDS(f.c.cur(), f.nodeID)
	return f.c.store.Stat(name)
}

// Exists implements vfs.FS. (No time charge: used on hot paths as a pure
// existence probe; Stat is the charged variant.)
func (f *ClientFS) Exists(name string) bool {
	return f.c.store.Exists(normalize(name))
}

// Barrier blocks the calling process until every write this client has
// issued is on stable storage — the storage-level half of LSMIO's write
// barrier. Unflushed write-back extents are pushed out first; a failed
// push (injected OST fault surviving the retry budget) fails the barrier.
func (f *ClientFS) Barrier() error {
	var firstErr error
	for pf := range f.open {
		if err := pf.flushWriteBack(); err != nil && firstErr == nil {
			firstErr = err
		}
		pf.finalizeCRCs()
	}
	p := f.c.cur()
	if wait := f.pending.Sub(p.Now()); wait > 0 {
		p.Sleep(wait)
	}
	return firstErr
}

// NodeID returns the fabric endpoint this client is bound to.
func (f *ClientFS) NodeID() int { return f.nodeID }

// pfsFile is an open file on the simulated PFS. Contiguous writes on one
// handle coalesce in a client write-back extent (Lustre dirty pages) and
// hit the wire as RPCs of up to MaxRPCSize; non-contiguous writes flush
// the pending extent first. Bytes always land in the backing store
// immediately — only the time accounting is deferred.
type pfsFile struct {
	fs      *ClientFS
	name    string
	inner   vfs.File // the backing MemFS file (real bytes)
	lay     *layout
	pending sim.Time // latest device completion for this handle

	wbOff int64 // start of the coalescing extent
	wbLen int64 // pending bytes (0 = none)

	// Read-ahead: [raStart, raEnd) is cached at the client; reads inside
	// it cost only a memory copy. lastReadEnd detects sequential access.
	raStart     int64
	raEnd       int64
	lastReadEnd int64
}

func (pf *pfsFile) Name() string { return pf.name }

// flushWriteBack ships the pending coalesced extent, if any. On failure
// the extent is dropped from the cache (its RPC was refused) and the
// error is surfaced to the caller.
func (pf *pfsFile) flushWriteBack() error {
	if pf.wbLen == 0 {
		return nil
	}
	off, n := pf.wbOff, pf.wbLen
	pf.wbLen = 0
	done, err := pf.fs.c.chargeWriteRPC(pf.fs.c.cur(), pf.fs.nodeID, pf.lay, off, n)
	pf.note(done)
	return err
}

// noteWrite folds n bytes at off into the write-back extent.
func (pf *pfsFile) noteWrite(off, n int64) error {
	c := pf.fs.c
	c.chargeWriteCPU(c.cur(), n)
	if pf.wbLen > 0 && off == pf.wbOff+pf.wbLen {
		pf.wbLen += n
	} else {
		if err := pf.flushWriteBack(); err != nil {
			return err
		}
		pf.wbOff, pf.wbLen = off, n
	}
	for pf.wbLen >= c.cfg.MaxRPCSize {
		take := c.cfg.MaxRPCSize
		off, n := pf.wbOff, take
		pf.wbOff += take
		pf.wbLen -= take
		done, err := c.chargeWriteRPC(c.cur(), pf.fs.nodeID, pf.lay, off, n)
		pf.note(done)
		if err != nil {
			return err
		}
	}
	return nil
}

func (pf *pfsFile) Read(p []byte) (int, error) {
	off, err := pf.inner.Seek(0, 1)
	if err != nil {
		return 0, err
	}
	if err := pf.flushWriteBack(); err != nil {
		return 0, err
	}
	n, err := pf.inner.Read(p)
	if n > 0 {
		if cerr := pf.chargeReadWithRA(off, int64(n)); cerr != nil {
			return 0, cerr
		}
	}
	return n, err
}

func (pf *pfsFile) ReadAt(p []byte, off int64) (int, error) {
	if err := pf.flushWriteBack(); err != nil {
		return 0, err
	}
	n, err := pf.inner.ReadAt(p, off)
	if n > 0 {
		if cerr := pf.chargeReadWithRA(off, int64(n)); cerr != nil {
			return 0, cerr
		}
	}
	return n, err
}

// chargeReadWithRA books a read, applying client read-ahead: sequential
// access fetches a full read-ahead window per RPC, and hits inside the
// cached window cost only the client-side copy.
func (pf *pfsFile) chargeReadWithRA(off, n int64) error {
	c := pf.fs.c
	p := c.cur()
	defer func() { pf.lastReadEnd = off + n }()
	if off >= pf.raStart && off+n <= pf.raEnd && pf.raEnd > 0 {
		// Client-cache hit: copy cost only.
		p.Sleep(time.Duration(float64(n) / c.cfg.ClientStreamBW * 1e9))
		return nil
	}
	fetch := n
	if off == pf.lastReadEnd && c.cfg.ReadAhead > fetch {
		// Sequential pattern: extend the fetch to the read-ahead window,
		// bounded by the file's current size.
		fetch = c.cfg.ReadAhead
		if size, err := pf.inner.Size(); err == nil && off+fetch > size {
			fetch = size - off
		}
		if fetch < n {
			fetch = n
		}
	}
	if err := c.chargeRead(p, pf.fs.nodeID, pf.lay, off, fetch); err != nil {
		return err
	}
	pf.raStart, pf.raEnd = off, off+fetch
	return nil
}

func (pf *pfsFile) Write(p []byte) (int, error) {
	off, err := pf.inner.Seek(0, 1)
	if err != nil {
		return 0, err
	}
	old := pf.readOld(off, len(p))
	n, err := pf.inner.Write(p)
	if n > 0 {
		if pf.lay.parity {
			pf.lay.xorUpdate(off, p[:n], old[:n])
		}
		if werr := pf.noteWrite(off, int64(n)); werr != nil && err == nil {
			err = werr
		}
	}
	return n, err
}

func (pf *pfsFile) WriteAt(p []byte, off int64) (int, error) {
	old := pf.readOld(off, len(p))
	n, err := pf.inner.WriteAt(p, off)
	if n > 0 {
		if pf.lay.parity {
			pf.lay.xorUpdate(off, p[:n], old[:n])
		}
		if werr := pf.noteWrite(off, int64(n)); werr != nil && err == nil {
			err = werr
		}
	}
	return n, err
}

// readOld captures the bytes a write will overwrite (zero-filled past
// EOF), so the parity object can be updated read-modify-write style.
// Only parity layouts pay for it.
func (pf *pfsFile) readOld(off int64, n int) []byte {
	if !pf.lay.parity || n == 0 {
		return nil
	}
	old := make([]byte, n)
	pf.inner.ReadAt(old, off) // partial read leaves the zero fill in place
	return old
}

// finalizeCRCs records the checksum of every stripe unit touched since
// the last sync boundary (the scrubber verifies only finalized units).
func (pf *pfsFile) finalizeCRCs() {
	l := pf.lay
	if !l.parity || len(l.dirty) == 0 {
		return
	}
	buf := make([]byte, l.stripeSize)
	for ci := range l.dirty {
		n, _ := pf.inner.ReadAt(buf, ci*l.stripeSize)
		if n > 0 {
			l.crc[ci] = crc32.ChecksumIEEE(buf[:n])
		}
		delete(l.dirty, ci)
	}
}

// note records a device completion on the handle and the client.
func (pf *pfsFile) note(done sim.Time) {
	if done > pf.pending {
		pf.pending = done
	}
	if done > pf.fs.pending {
		pf.fs.pending = done
	}
}

func (pf *pfsFile) Seek(offset int64, whence int) (int64, error) {
	return pf.inner.Seek(offset, whence)
}

func (pf *pfsFile) Size() (int64, error) { return pf.inner.Size() }

// Sync blocks until this handle's writes reach stable storage.
func (pf *pfsFile) Sync() error {
	if err := pf.flushWriteBack(); err != nil {
		return err
	}
	pf.finalizeCRCs()
	p := pf.fs.c.cur()
	if wait := pf.pending.Sub(p.Now()); wait > 0 {
		p.Sleep(wait)
	}
	return pf.inner.Sync()
}

func (pf *pfsFile) Truncate(size int64) error {
	if err := pf.inner.Truncate(size); err != nil {
		return err
	}
	pf.rebuildParityMeta()
	return nil
}

// rebuildParityMeta recomputes the parity bytes and unit checksums from
// scratch after a size change that XOR deltas cannot track.
func (pf *pfsFile) rebuildParityMeta() {
	l := pf.lay
	if !l.parity {
		return
	}
	size, err := pf.inner.Size()
	if err != nil {
		return
	}
	l.pdata = nil
	l.crc = make(map[int64]uint32)
	l.dirty = make(map[int64]bool)
	if size == 0 {
		return
	}
	buf := make([]byte, l.stripeSize)
	k := int64(l.stripeCount)
	for ci := int64(0); ci*l.stripeSize < size; ci++ {
		n, _ := pf.inner.ReadAt(buf, ci*l.stripeSize)
		if n <= 0 {
			break
		}
		l.crc[ci] = crc32.ChecksumIEEE(buf[:n])
		pOff := (ci / k) * l.stripeSize
		l.ensureParity(pOff + int64(n))
		for i := 0; i < n; i++ {
			l.pdata[pOff+int64(i)] ^= buf[i]
		}
	}
}

func (pf *pfsFile) Close() error {
	err := pf.flushWriteBack()
	pf.finalizeCRCs()
	delete(pf.fs.open, pf)
	if cerr := pf.inner.Close(); err == nil {
		err = cerr
	}
	return err
}
