package pfs

// Degraded-mode striping: the resilience layer over the simulated cluster.
//
// Three mechanisms cooperate so checkpoint traffic survives bad storage
// targets instead of stalling or erroring:
//
//   - Fail-stop / slow fault model (SetOSTHealth): an OST can be marked
//     degraded (every request served slow× slower) or dead (requests
//     refused with DeadOSTError). This is distinct from the transient
//     FaultFunc hook — dead is permanent and never retried.
//   - Health tracking + circuit breaking (EnableResilience): every served
//     or failed RPC is observed by a resil.Tracker; newLayout skips
//     breakered OSTs, and straggling stripe writes are hedged to a spare
//     OST after a quantile-calibrated delay.
//   - K+1 XOR parity (ResilientClient): files created by a resilient
//     client stripe over K data OSTs plus one dedicated parity OST with
//     real parity bytes and per-stripe-unit CRCs, so commits stay
//     writable and readable with one member down, and Scrub can verify
//     and rebuild.
//
// DESIGN.md §8 documents the model and its boundary with real Lustre.

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"lsmio/internal/resil"
	"lsmio/internal/sim"
	"lsmio/internal/vfs"
)

// OSTHealth is the fail-stop fault-model state of one OST.
type OSTHealth int

const (
	// OSTHealthy serves normally.
	OSTHealthy OSTHealth = iota
	// OSTDegraded serves every request slower by the configured factor.
	OSTDegraded
	// OSTDead refuses every request with DeadOSTError.
	OSTDead
)

func (h OSTHealth) String() string {
	switch h {
	case OSTHealthy:
		return "healthy"
	case OSTDegraded:
		return "degraded"
	case OSTDead:
		return "dead"
	}
	return fmt.Sprintf("health(%d)", int(h))
}

// DeadOSTError reports an RPC refused because the target OST is dead (or
// its stripe member was already absorbed by parity). It is permanent:
// not transient (never retried) and marks itself as a down target so the
// burst drain can distinguish it from retry exhaustion.
type DeadOSTError struct {
	OST int
}

func (e *DeadOSTError) Error() string {
	return fmt.Sprintf("pfs: OST %d is dead", e.OST)
}

// TargetDown marks the failure as a down storage target (vs transient).
func (e *DeadOSTError) TargetDown() bool { return true }

// targetDown reports whether err marks itself as a down-target failure.
func targetDown(err error) bool {
	var t interface{ TargetDown() bool }
	return errors.As(err, &t) && t.TargetDown()
}

// SetOSTHealth sets the fail-stop model state of OST idx. slowFactor is
// the service-time multiplier for OSTDegraded (values ≤ 1 mean "no
// slowdown"); it is ignored for the other states.
func (c *Cluster) SetOSTHealth(idx int, h OSTHealth, slowFactor float64) {
	if idx < 0 || idx >= len(c.osts) {
		panic(fmt.Sprintf("pfs: OST %d out of range", idx))
	}
	o := c.osts[idx]
	o.health = h
	o.slow = slowFactor
}

// OSTHealthState returns the fail-stop model state of OST idx.
func (c *Cluster) OSTHealthState(idx int) OSTHealth { return c.osts[idx].health }

// Resilience configures the cluster's degraded-mode machinery.
type Resilience struct {
	// Hedge enables hedged stripe writes: when a run's predicted device
	// completion lags the issue time by more than the hedge delay, the
	// run is duplicated to a spare OST and the first completion wins.
	Hedge bool
	// HedgeFactor scales the recent median observed write latency into
	// the hedge delay (default 1.5), clamped to [HedgeMinDelay,
	// HedgeMaxDelay] (defaults 1ms, 500ms).
	HedgeFactor   float64
	HedgeMinDelay time.Duration
	HedgeMaxDelay time.Duration
	// Parity makes clients obtained via ResilientClient create K+1
	// XOR-parity layouts (one extra dedicated parity OST per file).
	Parity bool
	// Tracker tunes the health tracker / circuit breaker.
	Tracker resil.Options
}

func (r Resilience) withDefaults() Resilience {
	if r.HedgeFactor <= 0 {
		r.HedgeFactor = 1.5
	}
	if r.HedgeMinDelay <= 0 {
		r.HedgeMinDelay = time.Millisecond
	}
	if r.HedgeMaxDelay <= 0 {
		r.HedgeMaxDelay = 500 * time.Millisecond
	}
	return r
}

// EnableResilience turns on health tracking (and, per r, hedging and
// parity striping for resilient clients). The tracker's breaker timers
// run on the cluster's virtual clock, its hedge-calibration quantiles
// come from the cluster's pfs.ost.write_latency histogram (the cluster
// records, the tracker reads), and breaker life-cycle events land in
// the cluster's trace ring.
func (c *Cluster) EnableResilience(r Resilience) {
	c.res = r.withDefaults()
	topts := c.res.Tracker
	if topts.Latency == nil {
		topts.Latency = c.m.writeLatency
	}
	if topts.Trace == nil {
		topts.Trace = c.m.trace
	}
	c.tracker = resil.New(c.cfg.NumOSTs, func() time.Duration {
		return c.k.Now().Duration()
	}, topts)
}

// Tracker returns the health tracker (nil before EnableResilience).
func (c *Cluster) Tracker() *resil.Tracker { return c.tracker }

// ResilientClient returns a client whose created files use parity
// striping when the cluster's Resilience.Parity is set. EnableResilience
// must have been called.
func (c *Cluster) ResilientClient(nodeID int) *ClientFS {
	if c.tracker == nil {
		panic("pfs: ResilientClient before EnableResilience")
	}
	f := c.Client(nodeID)
	f.parity = c.res.Parity
	return f
}

func (c *Cluster) observeOK(ostIdx int, lat time.Duration) {
	if c.tracker != nil {
		c.tracker.ObserveOK(ostIdx, lat)
	}
}

func (c *Cluster) observeErr(ostIdx int) {
	if c.tracker != nil {
		c.tracker.ObserveErr(ostIdx)
	}
}

// hedgeDelay is the straggler threshold: HedgeFactor × the median recent
// observed write latency, clamped. Zero (no observations yet) disables
// hedging for the request.
func (c *Cluster) hedgeDelay() time.Duration {
	med := c.tracker.Quantile(0.5)
	if med == 0 {
		return 0
	}
	d := time.Duration(float64(med) * c.res.HedgeFactor)
	if d < c.res.HedgeMinDelay {
		d = c.res.HedgeMinDelay
	}
	if d > c.res.HedgeMaxDelay {
		d = c.res.HedgeMaxDelay
	}
	return d
}

// pickSpare chooses the healthiest routable OST outside layout l (lowest
// EWMA latency), excluding `not`; -1 when none qualifies.
func (c *Cluster) pickSpare(l *layout, not int) int {
	best, bestLat := -1, time.Duration(0)
	for i := 0; i < c.cfg.NumOSTs; i++ {
		if i == not || c.osts[i].health != OSTHealthy {
			continue
		}
		if l.slotOf(i) >= 0 || (l.parity && i == l.parityOST) {
			continue
		}
		if c.tracker != nil && c.tracker.State(i) != resil.Closed {
			continue
		}
		lat := time.Duration(0)
		if c.tracker != nil {
			lat = c.tracker.EWMA(i)
		}
		if best == -1 || lat < bestLat {
			best, bestLat = i, lat
		}
	}
	return best
}

// maybeHedge duplicates a straggling run to a spare OST after the hedge
// delay and returns the effective completion time (first success wins —
// the spare's copy supersedes the primary's). The simulation computes the
// primary's completion synchronously, so "waited past the delay" becomes
// "predicted completion exceeds the delay".
func (c *Cluster) maybeHedge(p *sim.Proc, client int, l *layout, r run, start sim.Time, done sim.Time) sim.Time {
	if c.tracker == nil || !c.res.Hedge {
		return done
	}
	hd := c.hedgeDelay()
	if hd <= 0 || done.Sub(start) <= hd {
		return done
	}
	spare := c.pickSpare(l, r.ostIdx)
	if spare < 0 {
		return done
	}
	c.m.hedges.Inc()
	c.m.writeOps.Inc()
	hedgeStart := start.Duration()
	// The client issues the duplicate RPC once the delay elapses.
	p.Sleep(c.cfg.ClientRPCOverhead)
	ossIdx := c.ossOf(spare)
	c.fabric.Transfer(p, client, c.ossNodeID(ossIdx), r.n)
	t0 := start.Add(hd)
	if now := p.Now(); now > t0 {
		t0 = now
	}
	ossDone := c.oss[ossIdx].serve(t0,
		time.Duration(float64(r.n)/c.cfg.OSSBandwidth*1e9))
	// Spare service: a scratch object, so always a positioning cost and
	// no extent-lock interaction.
	so := c.osts[spare]
	d := c.cfg.OSTOpOverhead + c.cfg.WriteSeek +
		time.Duration(float64(r.n)/c.cfg.OSTSeqWriteBW*1e9)
	if so.health == OSTDegraded && so.slow > 1 {
		d = time.Duration(float64(d) * so.slow)
	}
	spareDone := so.serve(ossDone, d)
	c.observeOK(spare, spareDone.Sub(t0))
	won := spareDone < done
	if won {
		c.m.hedgeWins.Inc()
		done = spareDone
	}
	c.m.trace.EmitSpan("pfs.hedge",
		fmt.Sprintf("primary=%d spare=%d bytes=%d won=%t", r.ostIdx, spare, r.n, won),
		hedgeStart)
	return done
}

// lostMembers reports which data slots (and whether the parity object)
// are unavailable, combining write-time absorption with current health.
func (c *Cluster) lostMembers(l *layout) (dataLost []int, parityLost bool) {
	for slot, ostIdx := range l.osts {
		if l.lost[slot] || c.osts[ostIdx].health == OSTDead {
			dataLost = append(dataLost, slot)
		}
	}
	parityLost = l.parityLost || c.osts[l.parityOST].health == OSTDead
	return dataLost, parityLost
}

// absorbLostWrite marks a data slot as absorbed by parity, if the layout
// can still tolerate it (at most one member lost in total).
func (c *Cluster) absorbLostWrite(l *layout, slot int) bool {
	dataLost, parityLost := c.lostMembers(l)
	for _, s := range dataLost {
		if s != slot {
			return false // a second data member would exceed K+1 tolerance
		}
	}
	if parityLost {
		return false
	}
	l.lost[slot] = true
	c.m.lostStripeWrites.Inc()
	return true
}

// absorbLostParity drops the parity object for new writes when the parity
// OST is dead and all data members are intact (the file degenerates to
// plain RAID-0 until scrub relocates the parity object).
func (c *Cluster) absorbLostParity(l *layout) bool {
	dataLost, _ := c.lostMembers(l)
	if len(dataLost) > 0 {
		return false
	}
	l.parityLost = true
	c.m.lostStripeWrites.Inc()
	return true
}

// canDegradeRead reports whether the layout can serve slot's data by
// reconstruction: exactly that one member down and parity available.
func (c *Cluster) canDegradeRead(l *layout, slot int) bool {
	dataLost, parityLost := c.lostMembers(l)
	if parityLost {
		return false
	}
	return len(dataLost) == 1 && dataLost[0] == slot
}

// degradedRead serves one run by parity reconstruction: the equivalent
// extent is read from every surviving data member plus the parity object,
// and the client XORs them back together. The real bytes are intact in
// the backing store (fail-stop model), so only the cost is booked.
func (c *Cluster) degradedRead(p *sim.Proc, client int, l *layout, r run) {
	c.m.degradedReads.Inc()
	c.m.degradedReadBytes.Add(r.n)
	lostSlot := l.slotOf(r.ostIdx)
	for slot, ostIdx := range l.osts {
		if slot == lostSlot {
			continue
		}
		c.readRun(p, client, l, run{ostIdx: ostIdx, objOff: r.objOff, n: r.n})
	}
	c.readRun(p, client, l, run{ostIdx: l.parityOST, objOff: r.objOff, n: r.n})
	// Client-side XOR of K streams into the result.
	p.Sleep(time.Duration(float64(r.n*int64(l.stripeCount)) / c.cfg.ClientStreamBW * 1e9))
}

// writeParityRun ships the amortized parity update for a write of n file
// bytes: roughly n/K parity bytes (a small write updates its full byte
// range read-modify-write style) to the dedicated parity OST. Parity
// runs hedge like data runs — the parity image lives in the layout, so
// a hedged parity write is the same pure-timing redirect — otherwise a
// slow parity OST would be an unmitigated straggler for every file it
// backs.
func (c *Cluster) writeParityRun(p *sim.Proc, client int, l *layout, off, n int64) (sim.Time, error) {
	if l.parityLost {
		return 0, &DeadOSTError{OST: l.parityOST}
	}
	pn := n / int64(l.stripeCount)
	if pn == 0 {
		pn = n
	}
	c.m.parityBytes.Add(pn)
	r := run{ostIdx: l.parityOST, objOff: off / int64(l.stripeCount), n: pn}
	return c.writeRun(p, client, l, r, true)
}

// Layouts returns the sorted paths of parity-striped files under prefix
// (the scrubber's work list).
func (c *Cluster) Layouts(prefix string) []string {
	prefix = normalize(prefix)
	var out []string
	for p, l := range c.layouts {
		if !l.parity {
			continue
		}
		if prefix == "." || p == prefix || len(p) > len(prefix) && p[:len(prefix)] == prefix && p[len(prefix)] == '/' {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	Files         int
	Verified      int // stripe units whose checksum matched
	Repaired      int // stripe units rebuilt (relocation or corruption)
	Unrecoverable int // stripe units lost beyond parity's tolerance
}

// Scrub runs one scrub pass over every parity-striped file under dir:
// it verifies per-stripe-unit checksums, rebuilds corrupted units from
// parity, and relocates members living on dead OSTs onto healthy spares
// (remapping the layout). I/O time is charged to the calling process.
func (f *ClientFS) Scrub(dir string) (ScrubReport, error) {
	c := f.c
	p := c.cur()
	var rep ScrubReport
	for _, path := range c.Layouts(dir) {
		l := c.layouts[path]
		rep.Files++
		size, err := c.store.Stat(path)
		if err != nil {
			return rep, fmt.Errorf("pfs: scrub stat %s: %w", path, err)
		}
		units := finalizedUnits(l)
		dataLost, parityLost := c.lostMembers(l)
		if len(dataLost)+btoi(parityLost) > 1 {
			rep.Unrecoverable += len(units)
			c.m.scrubUnrecoverable.Add(int64(len(units)))
			continue
		}
		if len(dataLost) == 1 {
			n, err := c.rebuildDataMember(p, f.nodeID, path, l, dataLost[0], size, units)
			if err != nil {
				return rep, err
			}
			rep.Repaired += n
			c.m.scrubRepaired.Add(int64(n))
		} else if parityLost {
			if err := c.relocateParity(p, f.nodeID, path, l, size); err != nil {
				return rep, err
			}
			rep.Repaired++
			c.m.scrubRepaired.Add(1)
		}
		v, r, u, err := c.verifyUnits(p, f.nodeID, path, l, size, units)
		if err != nil {
			return rep, err
		}
		rep.Verified += v
		rep.Repaired += r
		rep.Unrecoverable += u
		c.m.scrubVerified.Add(int64(v))
		c.m.scrubRepaired.Add(int64(r))
		c.m.scrubUnrecoverable.Add(int64(u))
	}
	return rep, nil
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// finalizedUnits returns the sorted stripe-unit indexes with a CRC.
func finalizedUnits(l *layout) []int64 {
	units := make([]int64, 0, len(l.crc))
	for ci := range l.crc {
		units = append(units, ci)
	}
	sort.Slice(units, func(a, b int) bool { return units[a] < units[b] })
	return units
}

// unitLen is the byte length of stripe unit ci in a file of `size` bytes.
func unitLen(l *layout, ci, size int64) int64 {
	start := ci * l.stripeSize
	if start >= size {
		return 0
	}
	n := l.stripeSize
	if start+n > size {
		n = size - start
	}
	return n
}

// rebuildDataMember relocates a lost data member's finalized units onto a
// healthy spare OST: every survivor (including parity) is read and the
// member's units are rewritten to the spare, then the layout is remapped.
// Returns how many units were rebuilt.
func (c *Cluster) rebuildDataMember(p *sim.Proc, client int, path string, l *layout, slot int, size int64, units []int64) (int, error) {
	spare := c.pickSpare(l, -1)
	if spare < 0 {
		return 0, fmt.Errorf("pfs: scrub %s: no healthy spare OST to rebuild slot %d", path, slot)
	}
	rebuilt := 0
	for _, ci := range units {
		if int(ci%int64(l.stripeCount)) != slot {
			continue
		}
		n := unitLen(l, ci, size)
		if n == 0 {
			continue
		}
		objOff := (ci / int64(l.stripeCount)) * l.stripeSize
		// Read the row from every survivor plus parity, XOR, write to the
		// spare. The whole row's I/O buys Scrub-class tokens up front so
		// a rebuild storm is paced against foreground traffic.
		c.scrubAcquire(n * int64(len(l.osts)+1))
		for s, ostIdx := range l.osts {
			if s == slot {
				continue
			}
			c.readRun(p, client, l, run{ostIdx: ostIdx, objOff: objOff, n: n})
		}
		c.readRun(p, client, l, run{ostIdx: l.parityOST, objOff: objOff, n: n})
		if _, err := c.writeRun(p, client, l, run{ostIdx: spare, objOff: objOff, n: n}, false); err != nil {
			return rebuilt, fmt.Errorf("pfs: scrub %s: rebuild write: %w", path, err)
		}
		rebuilt++
	}
	l.osts[slot] = spare
	delete(l.lost, slot)
	return rebuilt, nil
}

// relocateParity recomputes the parity object on a healthy spare after
// the parity OST died: every data member is read and parity rewritten.
func (c *Cluster) relocateParity(p *sim.Proc, client int, path string, l *layout, size int64) error {
	spare := c.pickSpare(l, -1)
	if spare < 0 {
		return fmt.Errorf("pfs: scrub %s: no healthy spare OST for parity", path)
	}
	pn := size / int64(l.stripeCount)
	if pn == 0 {
		pn = size
	}
	c.scrubAcquire(pn * int64(len(l.osts)+1))
	for _, ostIdx := range l.osts {
		c.readRun(p, client, l, run{ostIdx: ostIdx, objOff: 0, n: pn})
	}
	if _, err := c.writeRun(p, client, l, run{ostIdx: spare, objOff: 0, n: pn}, false); err != nil {
		return fmt.Errorf("pfs: scrub %s: parity rewrite: %w", path, err)
	}
	l.parityOST = spare
	l.parityLost = false
	// The in-memory parity bytes were maintained through every write, so
	// the relocated object is immediately authoritative.
	return nil
}

// verifyUnits checks every finalized unit on live members against its
// CRC, reconstructing corrupted units from the real parity bytes.
func (c *Cluster) verifyUnits(p *sim.Proc, client int, path string, l *layout, size int64, units []int64) (verified, repaired, unrecoverable int, err error) {
	file, err := c.store.Open(path)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("pfs: scrub open %s: %w", path, err)
	}
	defer file.Close()
	buf := make([]byte, l.stripeSize)
	for _, ci := range units {
		n := unitLen(l, ci, size)
		if n == 0 {
			continue
		}
		slot := int(ci % int64(l.stripeCount))
		objOff := (ci / int64(l.stripeCount)) * l.stripeSize
		c.scrubAcquire(n)
		c.readRun(p, client, l, run{ostIdx: l.osts[slot], objOff: objOff, n: n})
		got, rerr := readFull(file, buf[:n], ci*l.stripeSize)
		if rerr != nil {
			return verified, repaired, unrecoverable, fmt.Errorf("pfs: scrub read %s unit %d: %w", path, ci, rerr)
		}
		if crc32.ChecksumIEEE(got) == l.crc[ci] {
			verified++
			continue
		}
		// Reconstruct from siblings + parity and write the true bytes back.
		fixed, ferr := c.reconstructUnit(p, client, file, l, ci, size)
		if ferr != nil {
			return verified, repaired, unrecoverable, ferr
		}
		if crc32.ChecksumIEEE(fixed) != l.crc[ci] {
			unrecoverable++
			continue
		}
		if _, werr := file.WriteAt(fixed, ci*l.stripeSize); werr != nil {
			return verified, repaired, unrecoverable, fmt.Errorf("pfs: scrub rewrite %s unit %d: %w", path, ci, werr)
		}
		c.scrubAcquire(n)
		if _, werr := c.writeRun(p, client, l, run{ostIdx: l.osts[slot], objOff: objOff, n: n}, false); werr != nil {
			return verified, repaired, unrecoverable, fmt.Errorf("pfs: scrub rewrite %s unit %d: %w", path, ci, werr)
		}
		repaired++
	}
	return verified, repaired, unrecoverable, nil
}

// reconstructUnit rebuilds stripe unit ci's original bytes from the
// sibling units in its row XORed with the maintained parity bytes.
func (c *Cluster) reconstructUnit(p *sim.Proc, client int, file vfs.File, l *layout, ci, size int64) ([]byte, error) {
	k := int64(l.stripeCount)
	row := ci / k
	slot := int(ci % k)
	n := unitLen(l, ci, size)
	out := make([]byte, n)
	pOff := row * l.stripeSize
	for i := int64(0); i < n; i++ {
		if pOff+i < int64(len(l.pdata)) {
			out[i] = l.pdata[pOff+i]
		}
	}
	buf := make([]byte, l.stripeSize)
	objOff := row * l.stripeSize
	for s := 0; s < int(k); s++ {
		if s == slot {
			continue
		}
		sib := row*k + int64(s)
		sn := unitLen(l, sib, size)
		if sn == 0 {
			continue
		}
		c.scrubAcquire(sn)
		c.readRun(p, client, l, run{ostIdx: l.osts[s], objOff: objOff, n: sn})
		got, err := readFull(file, buf[:sn], sib*l.stripeSize)
		if err != nil {
			return nil, fmt.Errorf("pfs: scrub reconstruct unit %d: %w", ci, err)
		}
		for i := 0; i < len(got) && int64(i) < n; i++ {
			out[i] ^= got[i]
		}
	}
	c.scrubAcquire(n)
	c.readRun(p, client, l, run{ostIdx: l.parityOST, objOff: objOff, n: n})
	return out, nil
}

// readFull reads exactly len(buf) bytes at off (the unit is known to be
// inside the file).
func readFull(file vfs.File, buf []byte, off int64) ([]byte, error) {
	n, err := file.ReadAt(buf, off)
	if n == len(buf) {
		return buf, nil
	}
	return nil, err
}
