package pfs

import (
	"lsmio/internal/obs"
)

// pfsMetrics holds the cluster's obs instrument handles under the `pfs.`
// prefix, resolved once at NewCluster so the RPC paths never hash
// instrument names. The legacy Stats struct is a snapshot view over
// these (Cluster.Stats). Latency histograms are recorded by the cluster
// itself — the resil tracker reads quantiles from writeLatency but never
// records into it, so there is exactly one owner per instrument.
type pfsMetrics struct {
	bytesWritten *obs.Counter
	bytesRead    *obs.Counter
	writeOps     *obs.Counter
	readOps      *obs.Counter
	seeks        *obs.Counter
	lockSwitches *obs.Counter
	metadataOps  *obs.Counter
	clientStalls *obs.Counter
	retries      *obs.Counter
	faults       *obs.Counter

	hedges    *obs.Counter
	hedgeWins *obs.Counter

	degradedReads     *obs.Counter
	degradedReadBytes *obs.Counter
	degradedLayouts   *obs.Counter

	parityBytes      *obs.Counter
	lostStripeWrites *obs.Counter

	scrubVerified      *obs.Counter
	scrubRepaired      *obs.Counter
	scrubUnrecoverable *obs.Counter

	// writeLatency is the client-effective per-run write latency (after
	// hedging picks the first success); readLatency its read-side
	// counterpart. writeLatency doubles as the hedge-delay calibration
	// source via the resil tracker.
	writeLatency *obs.Histogram
	readLatency  *obs.Histogram

	trace *obs.Trace
}

func newPFSMetrics(reg *obs.Registry) pfsMetrics {
	s := reg.Scope("pfs")
	return pfsMetrics{
		bytesWritten: s.Counter("bytes_written"),
		bytesRead:    s.Counter("bytes_read"),
		writeOps:     s.Counter("write_ops"),
		readOps:      s.Counter("read_ops"),
		seeks:        s.Counter("seeks"),
		lockSwitches: s.Counter("lock_switches"),
		metadataOps:  s.Counter("metadata_ops"),
		clientStalls: s.Counter("client_stalls"),
		retries:      s.Counter("retries"),
		faults:       s.Counter("faults_injected"),

		hedges:    s.Counter("hedge.issued"),
		hedgeWins: s.Counter("hedge.wins"),

		degradedReads:     s.Counter("degraded.reads"),
		degradedReadBytes: s.Counter("degraded.read_bytes"),
		degradedLayouts:   s.Counter("degraded.layouts"),

		parityBytes:      s.Counter("parity.bytes_written"),
		lostStripeWrites: s.Counter("parity.lost_stripe_writes"),

		scrubVerified:      s.Counter("scrub.verified"),
		scrubRepaired:      s.Counter("scrub.repaired"),
		scrubUnrecoverable: s.Counter("scrub.unrecoverable"),

		writeLatency: s.Histogram("ost.write_latency"),
		readLatency:  s.Histogram("ost.read_latency"),

		trace: s.Trace(),
	}
}
