package pfs

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"lsmio/internal/faultfs"
	"lsmio/internal/resil"
)

// resilTestConfig is a small cluster with enough OSTs for parity + spares.
func resilTestConfig(numOSTs int) Config {
	return Config{
		ComputeNodes:       1,
		NumOSTs:            numOSTs,
		NumOSSs:            1,
		DefaultStripeCount: 2,
		DefaultStripeSize:  4096,
		RetryMax:           3,
		RetryBaseDelay:     time.Millisecond,
		RetryMaxDelay:      8 * time.Millisecond,
	}
}

// pattern fills n deterministic bytes.
func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + i/251)
	}
	return b
}

func TestDeadOSTFailsPlainWrite(t *testing.T) {
	runOnCluster(t, resilTestConfig(2), func(c *Cluster, fs *ClientFS) {
		c.SetOSTHealth(0, OSTDead, 0)
		c.SetOSTHealth(1, OSTDead, 0)
		f, err := fs.CreateStriped("plain.dat", 2, 4096)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		f.Write(make([]byte, 8192))
		err = f.Sync()
		if err == nil {
			t.Error("sync succeeded with every OST dead")
			return
		}
		var dead *DeadOSTError
		if !errors.As(err, &dead) {
			t.Errorf("error %v is not a DeadOSTError", err)
		}
		if !dead.TargetDown() {
			t.Error("DeadOSTError must mark TargetDown")
		}
	})
}

func TestParityAbsorbsDeadMemberAndServesDegradedReads(t *testing.T) {
	data := pattern(64 << 10)
	c := runOnCluster(t, resilTestConfig(5), func(c *Cluster, fs *ClientFS) {
		c.EnableResilience(Resilience{Parity: true})
		rfs := c.ResilientClient(0)
		f, err := rfs.CreateStriped("ckpt.dat", 2, 4096)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		if _, err := f.Write(data); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		if err := f.Sync(); err != nil {
			t.Errorf("sync: %v", err)
			return
		}
		// Kill one data member mid-run; further writes must still commit.
		_, _, osts, _ := c.DescribeLayout("ckpt.dat")
		c.SetOSTHealth(osts[0], OSTDead, 0)
		if _, err := f.Write(pattern(8192)); err != nil {
			t.Errorf("write with dead member: %v", err)
			return
		}
		if err := f.Sync(); err != nil {
			t.Errorf("sync with dead member: %v", err)
			return
		}
		if err := f.Close(); err != nil {
			t.Errorf("close: %v", err)
			return
		}
		// Reads hit the lost member and must be served by reconstruction.
		g, err := rfs.Open("ckpt.dat")
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		got := make([]byte, len(data))
		if _, err := g.ReadAt(got, 0); err != nil {
			t.Errorf("degraded read: %v", err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("degraded read returned wrong bytes")
		}
		g.Close()
	})
	st := c.Stats()
	if st.LostStripeWrites == 0 {
		t.Error("expected LostStripeWrites > 0")
	}
	if st.DegradedReads == 0 || st.DegradedReadBytes == 0 {
		t.Errorf("expected degraded reads, got %d ops / %d bytes",
			st.DegradedReads, st.DegradedReadBytes)
	}
	if st.ParityBytesWritten == 0 {
		t.Error("expected parity traffic")
	}
}

func TestNewLayoutSkipsDeadOST(t *testing.T) {
	c := runOnCluster(t, resilTestConfig(4), func(c *Cluster, fs *ClientFS) {
		c.SetOSTHealth(1, OSTDead, 0)
		f, err := fs.CreateStriped("a.dat", 3, 4096)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		f.Close()
		_, _, osts, _ := c.DescribeLayout("a.dat")
		for _, o := range osts {
			if o == 1 {
				t.Errorf("layout %v includes dead OST 1", osts)
			}
		}
		if len(osts) != 3 {
			t.Errorf("stripe width %d, want 3 (healthy OSTs available)", len(osts))
		}
	})
	if c.Stats().DegradedLayouts == 0 {
		t.Error("expected DegradedLayouts > 0")
	}
}

func TestBreakerTripsSkipsAndRecovers(t *testing.T) {
	runOnCluster(t, resilTestConfig(3), func(c *Cluster, fs *ClientFS) {
		c.EnableResilience(Resilience{
			Tracker: resil.Options{ErrThreshold: 3, OpenTimeout: 200 * time.Millisecond},
		})
		faulty := true
		c.InjectFaults(func(write bool, ostIdx, attempt int) error {
			if faulty && write && ostIdx == 0 {
				return &faultfs.InjectedError{Op: faultfs.OpWrite, Transient: true}
			}
			return nil
		})
		f, err := fs.CreateStriped("a.dat", 1, 4096)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		f.Write(make([]byte, 4096))
		if err := f.Sync(); err == nil {
			t.Error("sync should fail after retry budget against OST 0")
		}
		f.Close()
		if c.Tracker().State(0) != resil.Open {
			t.Errorf("breaker state = %v, want open", c.Tracker().State(0))
		}
		// New layouts avoid the breakered OST.
		g, _ := fs.CreateStriped("b.dat", 2, 4096)
		g.Close()
		_, _, osts, _ := c.DescribeLayout("b.dat")
		for _, o := range osts {
			if o == 0 {
				t.Errorf("layout %v routed to breakered OST 0", osts)
			}
		}
		// Fault clears; after OpenTimeout the next layout probes OST 0 and
		// a successful write closes the breaker.
		faulty = false
		c.cur().Sleep(250 * time.Millisecond)
		h, err := fs.CreateStriped("c.dat", 3, 4096)
		if err != nil {
			t.Errorf("create c.dat: %v", err)
			return
		}
		if _, err := h.Write(make([]byte, 3*4096)); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		if err := h.Sync(); err != nil {
			t.Errorf("sync after recovery: %v", err)
			return
		}
		h.Close()
		_, _, osts, _ = c.DescribeLayout("c.dat")
		probed := false
		for _, o := range osts {
			if o == 0 {
				probed = true
			}
		}
		if !probed {
			t.Errorf("layout %v never probed recovering OST 0", osts)
		}
		if c.Tracker().State(0) != resil.Closed {
			t.Errorf("breaker state after successful probe = %v, want closed",
				c.Tracker().State(0))
		}
	})
}

func TestHedgedWriteRedirectsStraggler(t *testing.T) {
	cfg := resilTestConfig(4)
	cfg.DefaultStripeSize = 1 << 20
	cfg.MaxDirtyLag = 2 * time.Millisecond
	c := runOnCluster(t, cfg, func(c *Cluster, fs *ClientFS) {
		c.EnableResilience(Resilience{
			Hedge: true,
			// Keep the slow-trip out of the way: this test wants hedging,
			// not breaker action.
			Tracker: resil.Options{SlowStrikes: 1 << 20},
		})
		// Warm up the latency window on a healthy cluster.
		w, _ := fs.CreateStriped("warm.dat", 4, 1<<20)
		w.Write(make([]byte, 8<<20))
		w.Sync()
		w.Close()
		// One OST turns 10x slow; a file striped over it must hedge.
		c.SetOSTHealth(0, OSTDegraded, 10)
		f, err := fs.CreateStriped("slow.dat", 2, 1<<20)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		_, _, osts, _ := c.DescribeLayout("slow.dat")
		if osts[0] != 0 && osts[1] != 0 {
			t.Fatalf("layout %v does not include slow OST 0", osts)
		}
		if _, err := f.Write(make([]byte, 8<<20)); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		if err := f.Sync(); err != nil {
			t.Errorf("sync: %v", err)
		}
		f.Close()
	})
	st := c.Stats()
	if st.Hedges == 0 {
		t.Fatal("expected hedged writes against the slow OST")
	}
	if st.HedgeWins == 0 {
		t.Fatal("expected at least one hedge win")
	}
}

// TestHedgeWinDoesNotMaskPrimaryLatency is the regression test for the
// hedge-latency laundering bug: the primary OST's health observation used
// to be taken after hedging resolved, so a straggler whose writes were
// rescued by a fast spare was credited with the spare's latency and its
// EWMA converged toward healthy — the slow-trip could never see it. The
// primary must be observed with its own completion time regardless of who
// wins the hedge.
func TestHedgeWinDoesNotMaskPrimaryLatency(t *testing.T) {
	cfg := resilTestConfig(4)
	cfg.DefaultStripeSize = 1 << 20
	cfg.MaxDirtyLag = 2 * time.Millisecond
	c := runOnCluster(t, cfg, func(c *Cluster, fs *ClientFS) {
		c.EnableResilience(Resilience{
			Hedge: true,
			// Suppress breaker action so hedging keeps running against
			// the slow primary for the whole test.
			Tracker: resil.Options{SlowStrikes: 1 << 20},
		})
		w, _ := fs.CreateStriped("warm.dat", 4, 1<<20)
		w.Write(make([]byte, 8<<20))
		w.Sync()
		w.Close()
		c.SetOSTHealth(0, OSTDegraded, 10)
		f, err := fs.CreateStriped("slow.dat", 2, 1<<20)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		_, _, osts, _ := c.DescribeLayout("slow.dat")
		if osts[0] != 0 && osts[1] != 0 {
			t.Fatalf("layout %v does not include slow OST 0", osts)
		}
		if _, err := f.Write(make([]byte, 8<<20)); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		if err := f.Sync(); err != nil {
			t.Errorf("sync: %v", err)
		}
		f.Close()
	})
	st := c.Stats()
	if st.HedgeWins == 0 {
		t.Fatal("expected hedge wins against the slow OST")
	}
	// The victim's EWMA must reflect its true 10x latency, not the fast
	// hedged completion. Compare against the healthiest OST that served
	// comparable traffic.
	slow := c.Tracker().EWMA(0)
	var healthy time.Duration
	for i := 1; i < 4; i++ {
		if e := c.Tracker().EWMA(i); e > healthy {
			healthy = e
		}
	}
	if healthy == 0 {
		t.Fatal("healthy OSTs recorded no latency observations")
	}
	if slow < 3*healthy {
		t.Fatalf("slow OST EWMA %v not distinguishably above healthy max %v: hedge wins are masking primary latency", slow, healthy)
	}
}

func TestScrubRepairsCorruption(t *testing.T) {
	data := pattern(64 << 10)
	c := runOnCluster(t, resilTestConfig(5), func(c *Cluster, fs *ClientFS) {
		c.EnableResilience(Resilience{Parity: true})
		rfs := c.ResilientClient(0)
		f, _ := rfs.CreateStriped("ckpt/obj.dat", 2, 4096)
		f.Write(data)
		f.Sync()
		f.Close()
		// Silent corruption: flip bytes in the backing store directly.
		raw, err := c.Store().Open("ckpt/obj.dat")
		if err != nil {
			t.Errorf("store open: %v", err)
			return
		}
		raw.WriteAt([]byte{0xde, 0xad, 0xbe, 0xef}, 100)
		raw.WriteAt([]byte{0xff, 0xff}, 9000)
		raw.Close()
		rep, err := rfs.Scrub("ckpt")
		if err != nil {
			t.Errorf("scrub: %v", err)
			return
		}
		if rep.Files != 1 {
			t.Errorf("scrub files = %d, want 1", rep.Files)
		}
		if rep.Repaired < 2 {
			t.Errorf("scrub repaired = %d, want >= 2 (two corrupted units)", rep.Repaired)
		}
		if rep.Unrecoverable != 0 {
			t.Errorf("scrub unrecoverable = %d, want 0", rep.Unrecoverable)
		}
		if rep.Verified == 0 {
			t.Error("scrub verified no clean units")
		}
		// The true bytes are back.
		raw, _ = c.Store().Open("ckpt/obj.dat")
		got := make([]byte, len(data))
		raw.ReadAt(got, 0)
		raw.Close()
		if !bytes.Equal(got, data) {
			t.Error("scrub did not restore the original bytes")
		}
	})
	st := c.Stats()
	if st.ScrubRepaired < 2 || st.ScrubVerified == 0 {
		t.Errorf("scrub stats = %+v", st)
	}
}

func TestScrubRebuildsDeadMemberOntoSpare(t *testing.T) {
	data := pattern(64 << 10)
	runOnCluster(t, resilTestConfig(6), func(c *Cluster, fs *ClientFS) {
		c.EnableResilience(Resilience{Parity: true})
		rfs := c.ResilientClient(0)
		f, _ := rfs.CreateStriped("ckpt/obj.dat", 2, 4096)
		f.Write(data)
		f.Sync()
		f.Close()
		_, _, osts, _ := c.DescribeLayout("ckpt/obj.dat")
		deadOST := osts[1]
		c.SetOSTHealth(deadOST, OSTDead, 0)
		rep, err := rfs.Scrub("ckpt")
		if err != nil {
			t.Errorf("scrub: %v", err)
			return
		}
		if rep.Repaired == 0 {
			t.Error("scrub rebuilt nothing for the dead member")
		}
		if rep.Unrecoverable != 0 {
			t.Errorf("scrub unrecoverable = %d, want 0", rep.Unrecoverable)
		}
		// The layout was remapped off the dead OST...
		_, _, osts, _ = c.DescribeLayout("ckpt/obj.dat")
		for _, o := range osts {
			if o == deadOST {
				t.Errorf("layout %v still references dead OST %d", osts, deadOST)
			}
		}
		// ...so reads are full-speed again (not degraded) and correct.
		before := c.Stats().DegradedReads
		g, _ := rfs.Open("ckpt/obj.dat")
		got := make([]byte, len(data))
		if _, err := g.ReadAt(got, 0); err != nil {
			t.Errorf("read after rebuild: %v", err)
		}
		g.Close()
		if !bytes.Equal(got, data) {
			t.Error("read after rebuild returned wrong bytes")
		}
		if c.Stats().DegradedReads != before {
			t.Error("read after rebuild still used parity reconstruction")
		}
	})
}

func TestScrubReportsUnrecoverable(t *testing.T) {
	runOnCluster(t, resilTestConfig(6), func(c *Cluster, fs *ClientFS) {
		c.EnableResilience(Resilience{Parity: true})
		rfs := c.ResilientClient(0)
		f, _ := rfs.CreateStriped("ckpt/obj.dat", 2, 4096)
		f.Write(pattern(32 << 10))
		f.Sync()
		f.Close()
		_, _, osts, _ := c.DescribeLayout("ckpt/obj.dat")
		// Two dead data members exceed K+1 tolerance.
		c.SetOSTHealth(osts[0], OSTDead, 0)
		c.SetOSTHealth(osts[1], OSTDead, 0)
		rep, err := rfs.Scrub("ckpt")
		if err != nil {
			t.Errorf("scrub: %v", err)
			return
		}
		if rep.Unrecoverable == 0 {
			t.Error("scrub should report unrecoverable units with two members dead")
		}
		if rep.Repaired != 0 {
			t.Errorf("scrub repaired = %d, want 0", rep.Repaired)
		}
	})
}
