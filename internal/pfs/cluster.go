package pfs

import (
	"fmt"
	"time"

	"lsmio/internal/iosched"
	"lsmio/internal/netsim"
	"lsmio/internal/obs"
	"lsmio/internal/resil"
	"lsmio/internal/sim"
	"lsmio/internal/vfs"
)

// Cluster is the simulated storage system plus its interconnect. Compute
// nodes occupy fabric endpoints [0, ComputeNodes); OSS j sits at endpoint
// ComputeNodes+j.
type Cluster struct {
	k      *sim.Kernel
	cfg    Config
	fabric *netsim.Fabric

	store *vfs.MemFS // the actual bytes of every file
	mds   busyClock
	oss   []busyClock
	osts  []*ost

	layouts    map[string]*layout // path -> striping
	nextFileID uint64
	allocNext  int // MDS round-robin OST allocator

	faultFn FaultFunc

	// Resilience layer (nil/zero unless EnableResilience was called).
	tracker *resil.Tracker
	res     Resilience

	// iosched, when set, throttles scrub/repair I/O: every stripe-unit
	// read or write a scrub pass issues buys Scrub-class tokens first,
	// so a repair storm cannot monopolize OST bandwidth against
	// foreground commits. Set via SetIOScheduler; nil = unthrottled.
	iosched *iosched.Scheduler

	// reg is the obs registry (clocked on the cluster's virtual time)
	// backing every `pfs.*` counter and latency histogram; m caches the
	// instrument handles. Counters are atomic: sim-mode runs are
	// single-threaded, but go-mode shares a cluster between app
	// goroutines and the burst drain worker.
	reg *obs.Registry
	m   pfsMetrics
}

// FaultFunc decides whether one OST RPC attempt fails. It is consulted
// once per attempt (attempt 0 is the first try) and returns nil for
// success or the error to deliver. Errors exposing a
// `TransientFault() bool` method returning true (e.g. faultfs injected
// errors) are retried with backoff up to Config.RetryMax; anything else is
// surfaced immediately.
type FaultFunc func(write bool, ostIdx int, attempt int) error

// InjectFaults installs (or, with nil, removes) the cluster's RPC fault
// hook. Tests use it to model failing or flaky OSTs.
func (c *Cluster) InjectFaults(fn FaultFunc) { c.faultFn = fn }

// SetIOScheduler attaches (or, with nil, detaches) the shared bandwidth
// scheduler that throttles the cluster's scrub/repair I/O under the
// Scrub class. Foreground client I/O is never scheduled here — it is
// paced by the engine's own Foreground/Flush classes.
func (c *Cluster) SetIOScheduler(s *iosched.Scheduler) { c.iosched = s }

// scrubAcquire buys Scrub-class tokens for n bytes of repair I/O. Free
// when no scheduler is attached (the pre-PR-10 unthrottled behavior).
func (c *Cluster) scrubAcquire(n int64) {
	c.iosched.Acquire(iosched.Scrub, n)
}

// procClock adapts the calling simulation process to resil.Clock, so
// policy backoffs are charged on the virtual clock.
type procClock struct{ p *sim.Proc }

func (c procClock) Now() time.Duration    { return c.p.Now().Duration() }
func (c procClock) Sleep(d time.Duration) { c.p.Sleep(d) }

// retryPolicy builds the cluster's RPC retry discipline from the Config
// knobs. Both the read and the write path run every OST attempt under
// this one resil.Policy, so transient vs target-down vs fatal faults
// classify identically across tiers; OnRetry feeds the pfs.retries
// counter exactly once per backoff.
func (c *Cluster) retryPolicy() resil.Policy {
	return resil.Policy{
		MaxRetries: c.cfg.RetryMax,
		BaseDelay:  c.cfg.RetryBaseDelay,
		MaxDelay:   c.cfg.RetryMaxDelay,
		OnRetry:    func(int, error) { c.m.retries.Inc() },
	}
}

// retrySeed derives the deterministic jitter seed for one OST's retry
// sequence from the OST and the global retry count — no real-time
// randomness, so simulations stay reproducible.
func (c *Cluster) retrySeed(ostIdx int) uint64 {
	return uint64(ostIdx+1)*0x94d049bb133111eb + uint64(c.m.retries.Load()+1)
}

// layout is a file's stripe mapping, fixed at creation (Lustre semantics).
// Scrub relocation is the one exception: it may remap a lost member onto a
// healthy spare OST.
type layout struct {
	id          uint64
	stripeSize  int64
	stripeCount int
	osts        []int // stripe i lives on osts[i % stripeCount]

	// K+1 XOR-parity extension (resilience layer; zero for plain RAID-0).
	parity     bool
	parityOST  int
	lost       map[int]bool // data slot -> write absorbed while member dead
	parityLost bool
	// pdata holds the real parity bytes: parity object offset
	// row*stripeSize+within = XOR over the row's data units.
	pdata []byte
	// crc is the per-stripe-unit checksum (global unit index -> CRC32),
	// finalized at sync boundaries; dirty tracks units touched since.
	crc   map[int64]uint32
	dirty map[int64]bool
}

// slotOf returns the data slot an OST serves in this layout, -1 if none.
func (l *layout) slotOf(ostIdx int) int {
	for i, o := range l.osts {
		if o == ostIdx {
			return i
		}
	}
	return -1
}

// ensureParity grows the parity byte array to at least n bytes.
func (l *layout) ensureParity(n int64) {
	if int64(len(l.pdata)) < n {
		l.pdata = append(l.pdata, make([]byte, n-int64(len(l.pdata)))...)
	}
}

// xorUpdate folds a write of new bytes over old bytes into the parity
// object and marks the touched stripe units dirty for CRC finalization.
func (l *layout) xorUpdate(off int64, newb, oldb []byte) {
	s, k := l.stripeSize, int64(l.stripeCount)
	for i := int64(0); i < int64(len(newb)); i++ {
		fo := off + i
		ci := fo / s
		po := (ci/k)*s + fo%s
		l.ensureParity(po + 1)
		l.pdata[po] ^= oldb[i] ^ newb[i]
		l.dirty[ci] = true
	}
}

// busyClock is a serial server modelled by a busy-until timestamp:
// a request arriving at t is serviced during [max(t, busy), ...+d].
type busyClock struct {
	busyUntil sim.Time
}

// serve books d of service starting no earlier than now and returns the
// completion time.
func (b *busyClock) serve(now sim.Time, d time.Duration) sim.Time {
	start := b.busyUntil
	if now > start {
		start = now
	}
	b.busyUntil = start.Add(d)
	return b.busyUntil
}

// ost is one object storage target: a busy clock plus positioning and
// lock state. The array's controller cache absorbs a small number of
// concurrent sequential streams (tracked LRU by recent position); a
// request near any tracked stream costs no seek.
type ost struct {
	busyClock
	streams    []streamPos    // most recent first, at most streamCacheSize
	lockHolder map[uint64]int // fileID -> last writing client

	// Fail-stop / slow fault model (SetOSTHealth), distinct from the
	// transient FaultFunc: a degraded OST serves every request slow times
	// slower; a dead OST refuses requests outright.
	health OSTHealth
	slow   float64
}

type streamPos struct {
	fileID uint64
	end    int64
}

// matchStream reports whether the request continues a tracked stream and
// updates / inserts the stream position (LRU).
func (o *ost) matchStream(fileID uint64, objOff, n, window int64, cacheSize int) bool {
	for i, s := range o.streams {
		if s.fileID != fileID {
			continue
		}
		gap := objOff - s.end
		if gap < 0 {
			gap = -gap
		}
		if gap <= window {
			// Continue this stream; move it to the front.
			copy(o.streams[1:i+1], o.streams[:i])
			o.streams[0] = streamPos{fileID: fileID, end: objOff + n}
			return true
		}
	}
	// New stream: seek, insert at front, evict the oldest.
	o.streams = append(o.streams, streamPos{})
	copy(o.streams[1:], o.streams)
	o.streams[0] = streamPos{fileID: fileID, end: objOff + n}
	if len(o.streams) > cacheSize {
		o.streams = o.streams[:cacheSize]
	}
	return false
}

// NewCluster builds the storage system on kernel k.
func NewCluster(k *sim.Kernel, cfg Config) *Cluster {
	c := &Cluster{
		k:       k,
		cfg:     cfg.withDefaults(),
		store:   vfs.NewMemFS(),
		layouts: make(map[string]*layout),
		reg:     obs.NewRegistry(),
	}
	c.reg.SetClock(func() time.Duration { return k.Now().Duration() })
	c.m = newPFSMetrics(c.reg)
	c.fabric = netsim.New(k, netsim.Config{
		Nodes:     c.cfg.ComputeNodes + c.cfg.NumOSSs,
		Latency:   c.cfg.NetLatency,
		Bandwidth: c.cfg.NetBandwidth,
		MaxPacket: c.cfg.NetMaxPacket,
	})
	c.oss = make([]busyClock, c.cfg.NumOSSs)
	c.osts = make([]*ost, c.cfg.NumOSTs)
	for i := range c.osts {
		c.osts[i] = &ost{lockHolder: make(map[uint64]int)}
	}
	return c
}

// Kernel returns the simulation kernel.
func (c *Cluster) Kernel() *sim.Kernel { return c.k }

// Fabric returns the interconnect (shared with the MPI world).
func (c *Cluster) Fabric() *netsim.Fabric { return c.fabric }

// Config returns the effective configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Stats returns a snapshot of the cumulative storage statistics — a
// legacy view assembled from the `pfs.*` instruments in the obs
// registry (Cluster.Obs).
func (c *Cluster) Stats() Stats {
	m := &c.m
	return Stats{
		BytesWritten:       m.bytesWritten.Load(),
		BytesRead:          m.bytesRead.Load(),
		WriteOps:           m.writeOps.Load(),
		ReadOps:            m.readOps.Load(),
		Seeks:              m.seeks.Load(),
		LockSwitches:       m.lockSwitches.Load(),
		MetadataOps:        m.metadataOps.Load(),
		ClientStalls:       m.clientStalls.Load(),
		Retries:            m.retries.Load(),
		FaultsInjected:     m.faults.Load(),
		Hedges:             m.hedges.Load(),
		HedgeWins:          m.hedgeWins.Load(),
		DegradedReads:      m.degradedReads.Load(),
		DegradedReadBytes:  m.degradedReadBytes.Load(),
		ParityBytesWritten: m.parityBytes.Load(),
		LostStripeWrites:   m.lostStripeWrites.Load(),
		DegradedLayouts:    m.degradedLayouts.Load(),
		ScrubVerified:      m.scrubVerified.Load(),
		ScrubRepaired:      m.scrubRepaired.Load(),
		ScrubUnrecoverable: m.scrubUnrecoverable.Load(),
	}
}

// Obs returns the cluster's registry: every `pfs.*` counter plus the
// per-operation latency histograms (pfs.ost.write_latency /
// pfs.ost.read_latency) and the trace ring, all on virtual time.
func (c *Cluster) Obs() *obs.Registry { return c.reg }

// ResetStats zeroes the cumulative `pfs.*` statistics, starting a fresh
// accounting window (e.g. to isolate the retries a single drain incurs
// from those of the workload that staged the data).
func (c *Cluster) ResetStats() { c.reg.ResetPrefix("pfs.") }

// Store exposes the backing in-memory store (tests use it to verify data).
func (c *Cluster) Store() *vfs.MemFS { return c.store }

func (c *Cluster) ossNodeID(ossIdx int) int { return c.cfg.ComputeNodes + ossIdx }
func (c *Cluster) ossOf(ostIdx int) int     { return ostIdx % c.cfg.NumOSSs }

// cur returns the calling simulation process.
func (c *Cluster) cur() *sim.Proc {
	p := c.k.Current()
	if p == nil {
		panic("pfs: filesystem used outside a simulation process")
	}
	return p
}

// newLayout allocates striping for a new file. Dead OSTs and OSTs whose
// circuit breaker rejects routing are skipped (degraded-mode re-striping);
// if fewer healthy OSTs remain than the requested width, the stripe count
// is narrowed rather than failing the create. With parity, one extra OST
// is allocated as the dedicated parity target (K+1); parity is silently
// dropped when fewer than two usable OSTs exist.
func (c *Cluster) newLayout(stripeCount int, stripeSize int64, parity bool) *layout {
	if stripeCount <= 0 {
		stripeCount = c.cfg.DefaultStripeCount
	}
	if stripeCount > c.cfg.NumOSTs {
		stripeCount = c.cfg.NumOSTs
	}
	if stripeSize <= 0 {
		stripeSize = c.cfg.DefaultStripeSize
	}
	want := stripeCount
	if parity {
		if want < c.cfg.NumOSTs {
			want++
		}
	}
	sel := make([]int, 0, want)
	skipped := 0
	for i := 0; i < c.cfg.NumOSTs && len(sel) < want; i++ {
		idx := (c.allocNext + i) % c.cfg.NumOSTs
		if c.osts[idx].health == OSTDead {
			skipped++
			continue
		}
		// Route may grant a half-open probe: the OST joins this layout and
		// its first write resolves the probe.
		if c.tracker != nil && !c.tracker.Route(idx) {
			skipped++
			continue
		}
		sel = append(sel, idx)
	}
	if len(sel) == 0 {
		// Nothing usable: fall back to blind round-robin so the error
		// surfaces at write time (DeadOSTError) instead of losing it here.
		for i := 0; i < want && i < c.cfg.NumOSTs; i++ {
			sel = append(sel, (c.allocNext+i)%c.cfg.NumOSTs)
		}
	}
	if skipped > 0 {
		c.m.degradedLayouts.Inc()
	}
	c.allocNext = (c.allocNext + stripeCount) % c.cfg.NumOSTs
	c.nextFileID++
	l := &layout{
		id:         c.nextFileID,
		stripeSize: stripeSize,
	}
	if parity && len(sel) >= 2 {
		l.parity = true
		l.parityOST = sel[len(sel)-1]
		sel = sel[:len(sel)-1]
		l.lost = make(map[int]bool)
		l.crc = make(map[int64]uint32)
		l.dirty = make(map[int64]bool)
	}
	l.stripeCount = len(sel)
	l.osts = sel
	return l
}

// chargeMDS books one metadata operation to the calling process: a network
// round trip plus serialized MDS service.
func (c *Cluster) chargeMDS(p *sim.Proc, client int) {
	c.m.metadataOps.Inc()
	// Request to the MDS (modelled as living beside OSS 0).
	c.fabric.Transfer(p, client, c.ossNodeID(0), 256)
	done := c.mds.serve(p.Now(), c.cfg.MDSOpTime)
	if wait := done.Sub(p.Now()); wait > 0 {
		p.Sleep(wait)
	}
	p.Sleep(c.cfg.NetLatency) // reply
}

// run is one contiguous byte range on a single OST object.
type run struct {
	ostIdx int
	objOff int64
	n      int64
}

// stripeRuns splits a file byte range into per-OST contiguous object runs,
// in ascending file-offset order of their first chunk.
func (l *layout) stripeRuns(off, n int64) []run {
	if n <= 0 {
		return nil
	}
	var runs []run
	byOST := make(map[int]int) // ostIdx -> index in runs
	for rem := n; rem > 0; {
		ci := off / l.stripeSize
		within := off % l.stripeSize
		take := l.stripeSize - within
		if take > rem {
			take = rem
		}
		ostIdx := l.osts[int(ci)%l.stripeCount]
		objOff := (ci/int64(l.stripeCount))*l.stripeSize + within
		if i, ok := byOST[ostIdx]; ok && runs[i].objOff+runs[i].n == objOff {
			runs[i].n += take
		} else {
			byOST[ostIdx] = len(runs)
			runs = append(runs, run{ostIdx: ostIdx, objOff: objOff, n: take})
		}
		off += take
		rem -= take
	}
	return runs
}

// ostService computes and books one request's service on an OST,
// returning its completion time.
func (c *Cluster) ostService(o *ost, now sim.Time, client int, l *layout, r run, isWrite bool) sim.Time {
	var d time.Duration
	d += c.cfg.OSTOpOverhead
	if isWrite {
		d += time.Duration(float64(r.n) / c.cfg.OSTSeqWriteBW * 1e9)
	} else {
		d += time.Duration(float64(r.n) / c.cfg.OSTSeqReadBW * 1e9)
	}
	// Positioning: a request near one of the OST's tracked streams is
	// absorbed by the elevator and controller cache; anything else seeks.
	if !o.matchStream(l.id, r.objOff, r.n, c.cfg.CoalesceWindow, c.cfg.OSTStreamCache) {
		if isWrite {
			d += c.cfg.WriteSeek
		} else {
			d += c.cfg.ReadSeek
		}
		c.m.seeks.Inc()
	}
	// Extent locks: writes by a non-holder migrate the lock.
	if isWrite {
		if holder, ok := o.lockHolder[l.id]; ok && holder != client {
			d += c.cfg.LockSwitch
			c.m.lockSwitches.Inc()
		}
		o.lockHolder[l.id] = client
	}
	if o.health == OSTDegraded && o.slow > 1 {
		d = time.Duration(float64(d) * o.slow)
	}
	return o.serve(now, d)
}

// chargeWriteCPU books the client-side data-path cost of accepting n
// bytes into the write-back cache (page copy + checksum).
func (c *Cluster) chargeWriteCPU(p *sim.Proc, n int64) {
	c.m.bytesWritten.Add(n)
	p.Sleep(time.Duration(float64(n) / c.cfg.ClientStreamBW * 1e9))
}

// chargeWriteRPC ships a coalesced dirty extent: per-stripe-run RPC
// overhead and network transfer synchronously, then asynchronous device
// completion with dirty-lag backpressure. It returns the latest device
// completion time. Transient RPC faults (InjectFaults) are retried with
// bounded exponential backoff on the virtual clock; permanent faults and
// exhausted budgets surface as errors.
//
// With the resilience layer on, a straggling run may be hedged to a spare
// OST; on a parity layout, a run whose member OST is dead is absorbed (at
// most one member) instead of failing the write, and the amortized parity
// update is shipped to the dedicated parity OST.
func (c *Cluster) chargeWriteRPC(p *sim.Proc, client int, l *layout, off, n int64) (sim.Time, error) {
	var latest sim.Time
	for _, r := range l.stripeRuns(off, n) {
		done, err := c.writeRun(p, client, l, r, true)
		if err != nil {
			if l.parity && targetDown(err) {
				if slot := l.slotOf(r.ostIdx); slot >= 0 && c.absorbLostWrite(l, slot) {
					continue
				}
			}
			return latest, err
		}
		if done > latest {
			latest = done
		}
	}
	if l.parity && n > 0 {
		done, err := c.writeParityRun(p, client, l, off, n)
		if err != nil {
			if targetDown(err) && c.absorbLostParity(l) {
				return latest, nil
			}
			return latest, err
		}
		if done > latest {
			latest = done
		}
	}
	return latest, nil
}

// writeRun ships one contiguous run to its OST with the transient-retry
// policy, health checks, tracker observation, and (for data runs) hedging.
func (c *Cluster) writeRun(p *sim.Proc, client int, l *layout, r run, allowHedge bool) (sim.Time, error) {
	o := c.osts[r.ostIdx]
	if l.parity {
		if slot := l.slotOf(r.ostIdx); slot >= 0 && l.lost[slot] {
			// Member already absorbed by parity; don't resurrect it.
			return 0, &DeadOSTError{OST: r.ostIdx}
		}
	}
	var done sim.Time
	attempts := 0
	err := c.retryPolicy().Do(nil, procClock{p}, c.retrySeed(r.ostIdx), func(attempt int) error {
		attempts = attempt + 1
		c.m.writeOps.Inc()
		p.Sleep(c.cfg.ClientRPCOverhead)
		// Wire to the OSS.
		ossIdx := c.ossOf(r.ostIdx)
		c.fabric.Transfer(p, client, c.ossNodeID(ossIdx), r.n)
		if o.health == OSTDead {
			c.observeErr(r.ostIdx)
			return &DeadOSTError{OST: r.ostIdx}
		}
		if c.faultFn != nil {
			if err := c.faultFn(true, r.ostIdx, attempt); err != nil {
				c.m.faults.Inc()
				c.observeErr(r.ostIdx)
				return err
			}
		}
		// OSS backend, then OST, asynchronously from the client.
		start := p.Now()
		ossDone := c.oss[ossIdx].serve(start,
			time.Duration(float64(r.n)/c.cfg.OSSBandwidth*1e9))
		primaryDone := c.ostService(o, ossDone, client, l, r, true)
		// The health tracker must see the PRIMARY's own completion time:
		// crediting it with a faster hedged completion would launder a
		// straggler's latency through the spare, hold its EWMA down, and
		// keep the slow-trip breaker from ever opening.
		c.observeOK(r.ostIdx, primaryDone.Sub(start))
		done = primaryDone
		if allowHedge {
			done = c.maybeHedge(p, client, l, r, start, primaryDone)
		}
		// The latency histogram records what the CLIENT experienced — the
		// first completion to land, hedged or not. It feeds both the bench
		// percentiles and the hedge-delay median.
		c.m.writeLatency.ObserveDuration(done.Sub(start))
		// Dirty-lag backpressure: stall until the device is close enough.
		if lag := done.Sub(p.Now()); lag > c.cfg.MaxDirtyLag {
			c.m.clientStalls.Inc()
			p.Sleep(lag - c.cfg.MaxDirtyLag)
		}
		return nil
	})
	if err != nil {
		if resil.Classify(err) == resil.ClassTargetDown {
			return 0, err // dead target: callers may absorb via parity
		}
		return 0, fmt.Errorf("pfs: write to OST %d failed after %d attempt(s): %w",
			r.ostIdx, attempts, err)
	}
	return done, nil
}

// chargeRead books a synchronous client read, with the same transient
// retry policy as writes. On a parity layout with exactly one member
// down, the run is served by parity reconstruction from the survivors.
func (c *Cluster) chargeRead(p *sim.Proc, client int, l *layout, off, n int64) error {
	c.m.bytesRead.Add(n)
	for _, r := range l.stripeRuns(off, n) {
		slot := l.slotOf(r.ostIdx)
		down := c.osts[r.ostIdx].health == OSTDead ||
			(l.parity && slot >= 0 && l.lost[slot])
		if down {
			if l.parity && c.canDegradeRead(l, slot) {
				c.degradedRead(p, client, l, r)
				continue
			}
			return fmt.Errorf("pfs: read of %d bytes unavailable: %w",
				r.n, &DeadOSTError{OST: r.ostIdx})
		}
		if err := c.readRun(p, client, l, r); err != nil {
			return err
		}
	}
	return nil
}

// readRun ships one contiguous read run under the same resil.Policy as
// the write path: transient faults are retried with deterministic
// backoff on the virtual clock, dead targets and fatal faults surface
// immediately.
func (c *Cluster) readRun(p *sim.Proc, client int, l *layout, r run) error {
	attempts := 0
	err := c.retryPolicy().Do(nil, procClock{p}, c.retrySeed(r.ostIdx), func(attempt int) error {
		attempts = attempt + 1
		c.m.readOps.Inc()
		p.Sleep(c.cfg.ClientRPCOverhead)
		ossIdx := c.ossOf(r.ostIdx)
		// Request travels to the OSS (small), data comes back.
		c.fabric.Transfer(p, client, c.ossNodeID(ossIdx), 128)
		if c.osts[r.ostIdx].health == OSTDead {
			c.observeErr(r.ostIdx)
			return &DeadOSTError{OST: r.ostIdx}
		}
		if c.faultFn != nil {
			if err := c.faultFn(false, r.ostIdx, attempt); err != nil {
				c.m.faults.Inc()
				c.observeErr(r.ostIdx)
				return err
			}
		}
		start := p.Now()
		done := c.ostService(c.osts[r.ostIdx], start, client, l, r, false)
		if wait := done.Sub(p.Now()); wait > 0 {
			p.Sleep(wait)
		}
		c.observeOK(r.ostIdx, done.Sub(start))
		c.m.readLatency.ObserveDuration(done.Sub(start))
		c.fabric.Transfer(p, c.ossNodeID(ossIdx), client, r.n)
		// Client-side copy out of the reply.
		p.Sleep(time.Duration(float64(r.n) / c.cfg.ClientStreamBW * 1e9))
		return nil
	})
	if err != nil {
		if resil.Classify(err) == resil.ClassTargetDown {
			return fmt.Errorf("pfs: read of %d bytes unavailable: %w", r.n, err)
		}
		return fmt.Errorf("pfs: read from OST %d failed after %d attempt(s): %w",
			r.ostIdx, attempts, err)
	}
	return nil
}

// OSTUtilization returns each OST's busy time as a fraction of elapsed
// virtual time (diagnostics for the harness).
func (c *Cluster) OSTUtilization() []float64 {
	now := c.k.Now()
	if now == 0 {
		return make([]float64, len(c.osts))
	}
	out := make([]float64, len(c.osts))
	for i, o := range c.osts {
		busy := o.busyUntil
		if busy > now {
			busy = now
		}
		out[i] = busy.Seconds() / now.Seconds()
	}
	return out
}

// DescribeLayout reports a file's striping, for tests and tooling.
func (c *Cluster) DescribeLayout(path string) (stripeCount int, stripeSize int64, osts []int, err error) {
	l, ok := c.layouts[normalize(path)]
	if !ok {
		return 0, 0, nil, fmt.Errorf("pfs: no layout for %s: %w", path, vfs.ErrNotExist)
	}
	return l.stripeCount, l.stripeSize, append([]int(nil), l.osts...), nil
}
