package pfs

import (
	"errors"
	"fmt"
	"time"

	"lsmio/internal/netsim"
	"lsmio/internal/sim"
	"lsmio/internal/vfs"
)

// Cluster is the simulated storage system plus its interconnect. Compute
// nodes occupy fabric endpoints [0, ComputeNodes); OSS j sits at endpoint
// ComputeNodes+j.
type Cluster struct {
	k      *sim.Kernel
	cfg    Config
	fabric *netsim.Fabric

	store *vfs.MemFS // the actual bytes of every file
	mds   busyClock
	oss   []busyClock
	osts  []*ost

	layouts    map[string]*layout // path -> striping
	nextFileID uint64
	allocNext  int // MDS round-robin OST allocator

	faultFn FaultFunc

	stats Stats
}

// FaultFunc decides whether one OST RPC attempt fails. It is consulted
// once per attempt (attempt 0 is the first try) and returns nil for
// success or the error to deliver. Errors exposing a
// `TransientFault() bool` method returning true (e.g. faultfs injected
// errors) are retried with backoff up to Config.RetryMax; anything else is
// surfaced immediately.
type FaultFunc func(write bool, ostIdx int, attempt int) error

// InjectFaults installs (or, with nil, removes) the cluster's RPC fault
// hook. Tests use it to model failing or flaky OSTs.
func (c *Cluster) InjectFaults(fn FaultFunc) { c.faultFn = fn }

// transientFault reports whether err marks itself retryable.
func transientFault(err error) bool {
	var t interface{ TransientFault() bool }
	return errors.As(err, &t) && t.TransientFault()
}

// retryBackoff computes the delay before retry number attempt+1:
// exponential from RetryBaseDelay, capped at RetryMaxDelay, with a
// deterministic jitter factor in [0.5, 1.5) derived from the attempt,
// the OST, and the global retry count — no real-time randomness, so
// simulations stay reproducible.
func (c *Cluster) retryBackoff(attempt, ostIdx int) time.Duration {
	d := c.cfg.RetryBaseDelay << uint(attempt)
	if d > c.cfg.RetryMaxDelay || d <= 0 {
		d = c.cfg.RetryMaxDelay
	}
	h := uint64(ostIdx+1)*0x9e3779b97f4a7c15 +
		uint64(attempt+1)*0xbf58476d1ce4e5b9 +
		uint64(c.stats.Retries)*0x94d049bb133111eb
	h ^= h >> 31
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 29
	frac := float64(h%1024) / 1024.0
	return time.Duration(float64(d) * (0.5 + frac))
}

// layout is a file's stripe mapping, fixed at creation (Lustre semantics).
type layout struct {
	id          uint64
	stripeSize  int64
	stripeCount int
	osts        []int // stripe i lives on osts[i % stripeCount]
}

// busyClock is a serial server modelled by a busy-until timestamp:
// a request arriving at t is serviced during [max(t, busy), ...+d].
type busyClock struct {
	busyUntil sim.Time
}

// serve books d of service starting no earlier than now and returns the
// completion time.
func (b *busyClock) serve(now sim.Time, d time.Duration) sim.Time {
	start := b.busyUntil
	if now > start {
		start = now
	}
	b.busyUntil = start.Add(d)
	return b.busyUntil
}

// ost is one object storage target: a busy clock plus positioning and
// lock state. The array's controller cache absorbs a small number of
// concurrent sequential streams (tracked LRU by recent position); a
// request near any tracked stream costs no seek.
type ost struct {
	busyClock
	streams    []streamPos    // most recent first, at most streamCacheSize
	lockHolder map[uint64]int // fileID -> last writing client
}

type streamPos struct {
	fileID uint64
	end    int64
}

// matchStream reports whether the request continues a tracked stream and
// updates / inserts the stream position (LRU).
func (o *ost) matchStream(fileID uint64, objOff, n, window int64, cacheSize int) bool {
	for i, s := range o.streams {
		if s.fileID != fileID {
			continue
		}
		gap := objOff - s.end
		if gap < 0 {
			gap = -gap
		}
		if gap <= window {
			// Continue this stream; move it to the front.
			copy(o.streams[1:i+1], o.streams[:i])
			o.streams[0] = streamPos{fileID: fileID, end: objOff + n}
			return true
		}
	}
	// New stream: seek, insert at front, evict the oldest.
	o.streams = append(o.streams, streamPos{})
	copy(o.streams[1:], o.streams)
	o.streams[0] = streamPos{fileID: fileID, end: objOff + n}
	if len(o.streams) > cacheSize {
		o.streams = o.streams[:cacheSize]
	}
	return false
}

// NewCluster builds the storage system on kernel k.
func NewCluster(k *sim.Kernel, cfg Config) *Cluster {
	c := &Cluster{
		k:       k,
		cfg:     cfg.withDefaults(),
		store:   vfs.NewMemFS(),
		layouts: make(map[string]*layout),
	}
	c.fabric = netsim.New(k, netsim.Config{
		Nodes:     c.cfg.ComputeNodes + c.cfg.NumOSSs,
		Latency:   c.cfg.NetLatency,
		Bandwidth: c.cfg.NetBandwidth,
		MaxPacket: c.cfg.NetMaxPacket,
	})
	c.oss = make([]busyClock, c.cfg.NumOSSs)
	c.osts = make([]*ost, c.cfg.NumOSTs)
	for i := range c.osts {
		c.osts[i] = &ost{lockHolder: make(map[uint64]int)}
	}
	return c
}

// Kernel returns the simulation kernel.
func (c *Cluster) Kernel() *sim.Kernel { return c.k }

// Fabric returns the interconnect (shared with the MPI world).
func (c *Cluster) Fabric() *netsim.Fabric { return c.fabric }

// Config returns the effective configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Stats returns cumulative storage statistics.
func (c *Cluster) Stats() Stats { return c.stats }

// ResetStats zeroes the cumulative statistics, starting a fresh
// accounting window (e.g. to isolate the retries a single drain incurs
// from those of the workload that staged the data).
func (c *Cluster) ResetStats() { c.stats = Stats{} }

// Store exposes the backing in-memory store (tests use it to verify data).
func (c *Cluster) Store() *vfs.MemFS { return c.store }

func (c *Cluster) ossNodeID(ossIdx int) int { return c.cfg.ComputeNodes + ossIdx }
func (c *Cluster) ossOf(ostIdx int) int     { return ostIdx % c.cfg.NumOSSs }

// cur returns the calling simulation process.
func (c *Cluster) cur() *sim.Proc {
	p := c.k.Current()
	if p == nil {
		panic("pfs: filesystem used outside a simulation process")
	}
	return p
}

// newLayout allocates striping for a new file.
func (c *Cluster) newLayout(stripeCount int, stripeSize int64) *layout {
	if stripeCount <= 0 {
		stripeCount = c.cfg.DefaultStripeCount
	}
	if stripeCount > c.cfg.NumOSTs {
		stripeCount = c.cfg.NumOSTs
	}
	if stripeSize <= 0 {
		stripeSize = c.cfg.DefaultStripeSize
	}
	c.nextFileID++
	l := &layout{
		id:          c.nextFileID,
		stripeSize:  stripeSize,
		stripeCount: stripeCount,
		osts:        make([]int, stripeCount),
	}
	start := c.allocNext
	c.allocNext = (c.allocNext + stripeCount) % c.cfg.NumOSTs
	for i := 0; i < stripeCount; i++ {
		l.osts[i] = (start + i) % c.cfg.NumOSTs
	}
	return l
}

// chargeMDS books one metadata operation to the calling process: a network
// round trip plus serialized MDS service.
func (c *Cluster) chargeMDS(p *sim.Proc, client int) {
	c.stats.MetadataOps++
	// Request to the MDS (modelled as living beside OSS 0).
	c.fabric.Transfer(p, client, c.ossNodeID(0), 256)
	done := c.mds.serve(p.Now(), c.cfg.MDSOpTime)
	if wait := done.Sub(p.Now()); wait > 0 {
		p.Sleep(wait)
	}
	p.Sleep(c.cfg.NetLatency) // reply
}

// run is one contiguous byte range on a single OST object.
type run struct {
	ostIdx int
	objOff int64
	n      int64
}

// stripeRuns splits a file byte range into per-OST contiguous object runs,
// in ascending file-offset order of their first chunk.
func (l *layout) stripeRuns(off, n int64) []run {
	if n <= 0 {
		return nil
	}
	var runs []run
	byOST := make(map[int]int) // ostIdx -> index in runs
	for rem := n; rem > 0; {
		ci := off / l.stripeSize
		within := off % l.stripeSize
		take := l.stripeSize - within
		if take > rem {
			take = rem
		}
		ostIdx := l.osts[int(ci)%l.stripeCount]
		objOff := (ci/int64(l.stripeCount))*l.stripeSize + within
		if i, ok := byOST[ostIdx]; ok && runs[i].objOff+runs[i].n == objOff {
			runs[i].n += take
		} else {
			byOST[ostIdx] = len(runs)
			runs = append(runs, run{ostIdx: ostIdx, objOff: objOff, n: take})
		}
		off += take
		rem -= take
	}
	return runs
}

// ostService computes and books one request's service on an OST,
// returning its completion time.
func (c *Cluster) ostService(o *ost, now sim.Time, client int, l *layout, r run, isWrite bool) sim.Time {
	var d time.Duration
	d += c.cfg.OSTOpOverhead
	if isWrite {
		d += time.Duration(float64(r.n) / c.cfg.OSTSeqWriteBW * 1e9)
	} else {
		d += time.Duration(float64(r.n) / c.cfg.OSTSeqReadBW * 1e9)
	}
	// Positioning: a request near one of the OST's tracked streams is
	// absorbed by the elevator and controller cache; anything else seeks.
	if !o.matchStream(l.id, r.objOff, r.n, c.cfg.CoalesceWindow, c.cfg.OSTStreamCache) {
		if isWrite {
			d += c.cfg.WriteSeek
		} else {
			d += c.cfg.ReadSeek
		}
		c.stats.Seeks++
	}
	// Extent locks: writes by a non-holder migrate the lock.
	if isWrite {
		if holder, ok := o.lockHolder[l.id]; ok && holder != client {
			d += c.cfg.LockSwitch
			c.stats.LockSwitches++
		}
		o.lockHolder[l.id] = client
	}
	return o.serve(now, d)
}

// chargeWriteCPU books the client-side data-path cost of accepting n
// bytes into the write-back cache (page copy + checksum).
func (c *Cluster) chargeWriteCPU(p *sim.Proc, n int64) {
	c.stats.BytesWritten += n
	p.Sleep(time.Duration(float64(n) / c.cfg.ClientStreamBW * 1e9))
}

// chargeWriteRPC ships a coalesced dirty extent: per-stripe-run RPC
// overhead and network transfer synchronously, then asynchronous device
// completion with dirty-lag backpressure. It returns the latest device
// completion time. Transient RPC faults (InjectFaults) are retried with
// bounded exponential backoff on the virtual clock; permanent faults and
// exhausted budgets surface as errors.
func (c *Cluster) chargeWriteRPC(p *sim.Proc, client int, l *layout, off, n int64) (sim.Time, error) {
	var latest sim.Time
	for _, r := range l.stripeRuns(off, n) {
		for attempt := 0; ; attempt++ {
			c.stats.WriteOps++
			p.Sleep(c.cfg.ClientRPCOverhead)
			// Wire to the OSS.
			ossIdx := c.ossOf(r.ostIdx)
			c.fabric.Transfer(p, client, c.ossNodeID(ossIdx), r.n)
			if c.faultFn != nil {
				if err := c.faultFn(true, r.ostIdx, attempt); err != nil {
					c.stats.FaultsInjected++
					if transientFault(err) && attempt < c.cfg.RetryMax {
						c.stats.Retries++
						p.Sleep(c.retryBackoff(attempt, r.ostIdx))
						continue
					}
					return latest, fmt.Errorf("pfs: write to OST %d failed after %d attempt(s): %w",
						r.ostIdx, attempt+1, err)
				}
			}
			// OSS backend, then OST, asynchronously from the client.
			ossDone := c.oss[ossIdx].serve(p.Now(),
				time.Duration(float64(r.n)/c.cfg.OSSBandwidth*1e9))
			done := c.ostService(c.osts[r.ostIdx], ossDone, client, l, r, true)
			if done > latest {
				latest = done
			}
			// Dirty-lag backpressure: stall until the device is close enough.
			if lag := done.Sub(p.Now()); lag > c.cfg.MaxDirtyLag {
				c.stats.ClientStalls++
				p.Sleep(lag - c.cfg.MaxDirtyLag)
			}
			break
		}
	}
	return latest, nil
}

// chargeRead books a synchronous client read, with the same transient
// retry policy as writes.
func (c *Cluster) chargeRead(p *sim.Proc, client int, l *layout, off, n int64) error {
	c.stats.BytesRead += n
	for _, r := range l.stripeRuns(off, n) {
		for attempt := 0; ; attempt++ {
			c.stats.ReadOps++
			p.Sleep(c.cfg.ClientRPCOverhead)
			ossIdx := c.ossOf(r.ostIdx)
			// Request travels to the OSS (small), data comes back.
			c.fabric.Transfer(p, client, c.ossNodeID(ossIdx), 128)
			if c.faultFn != nil {
				if err := c.faultFn(false, r.ostIdx, attempt); err != nil {
					c.stats.FaultsInjected++
					if transientFault(err) && attempt < c.cfg.RetryMax {
						c.stats.Retries++
						p.Sleep(c.retryBackoff(attempt, r.ostIdx))
						continue
					}
					return fmt.Errorf("pfs: read from OST %d failed after %d attempt(s): %w",
						r.ostIdx, attempt+1, err)
				}
			}
			done := c.ostService(c.osts[r.ostIdx], p.Now(), client, l, r, false)
			if wait := done.Sub(p.Now()); wait > 0 {
				p.Sleep(wait)
			}
			c.fabric.Transfer(p, c.ossNodeID(ossIdx), client, r.n)
			// Client-side copy out of the reply.
			p.Sleep(time.Duration(float64(r.n) / c.cfg.ClientStreamBW * 1e9))
			break
		}
	}
	return nil
}

// OSTUtilization returns each OST's busy time as a fraction of elapsed
// virtual time (diagnostics for the harness).
func (c *Cluster) OSTUtilization() []float64 {
	now := c.k.Now()
	if now == 0 {
		return make([]float64, len(c.osts))
	}
	out := make([]float64, len(c.osts))
	for i, o := range c.osts {
		busy := o.busyUntil
		if busy > now {
			busy = now
		}
		out[i] = busy.Seconds() / now.Seconds()
	}
	return out
}

// DescribeLayout reports a file's striping, for tests and tooling.
func (c *Cluster) DescribeLayout(path string) (stripeCount int, stripeSize int64, osts []int, err error) {
	l, ok := c.layouts[normalize(path)]
	if !ok {
		return 0, 0, nil, fmt.Errorf("pfs: no layout for %s: %w", path, vfs.ErrNotExist)
	}
	return l.stripeCount, l.stripeSize, append([]int(nil), l.osts...), nil
}
