package pfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"lsmio/internal/sim"
	"lsmio/internal/vfs"
)

func testConfig(nodes int) Config {
	cfg := VikingConfig(nodes)
	return cfg
}

// runOnCluster executes body as a single simulation process on node 0.
func runOnCluster(t *testing.T, cfg Config, body func(c *Cluster, fs *ClientFS)) *Cluster {
	t.Helper()
	k := sim.NewKernel()
	c := NewCluster(k, cfg)
	k.Spawn("client", func(p *sim.Proc) {
		body(c, c.Client(0))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestStripeRunsCoverRangeExactly(t *testing.T) {
	fn := func(offRaw, nRaw uint32, count8 uint8, sizeShift uint8) bool {
		stripeCount := int(count8%8) + 1
		stripeSize := int64(1) << (10 + sizeShift%8) // 1K .. 128K
		l := &layout{id: 1, stripeSize: stripeSize, stripeCount: stripeCount,
			osts: make([]int, stripeCount)}
		for i := range l.osts {
			l.osts[i] = i * 3 % 45
		}
		off := int64(offRaw % (1 << 24))
		n := int64(nRaw%(1<<22)) + 1
		runs := l.stripeRuns(off, n)
		var total int64
		for _, r := range runs {
			if r.n <= 0 {
				return false
			}
			total += r.n
		}
		return total == n
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStripeRunsMapping(t *testing.T) {
	l := &layout{id: 1, stripeSize: 64, stripeCount: 4, osts: []int{10, 11, 12, 13}}
	// Write [0, 256): chunks 0..3 land on OSTs 10..13, one 64-byte run each
	// at object offset 0.
	runs := l.stripeRuns(0, 256)
	if len(runs) != 4 {
		t.Fatalf("runs = %+v", runs)
	}
	for i, r := range runs {
		if r.ostIdx != 10+i || r.objOff != 0 || r.n != 64 {
			t.Fatalf("run %d = %+v", i, r)
		}
	}
	// Write [256, 512): same OSTs, object offset 64 (second stripe round).
	runs = l.stripeRuns(256, 256)
	for i, r := range runs {
		if r.ostIdx != 10+i || r.objOff != 64 {
			t.Fatalf("second round run %d = %+v", i, r)
		}
	}
	// A large write coalesces per-OST: [0, 512) gives 4 runs of 128 bytes.
	runs = l.stripeRuns(0, 512)
	if len(runs) != 4 {
		t.Fatalf("coalesced runs = %+v", runs)
	}
	for _, r := range runs {
		if r.n != 128 {
			t.Fatalf("coalesced run = %+v", r)
		}
	}
	// Unaligned tail.
	runs = l.stripeRuns(60, 10)
	if len(runs) != 2 || runs[0].n != 4 || runs[1].n != 6 {
		t.Fatalf("unaligned runs = %+v", runs)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	runOnCluster(t, testConfig(1), func(c *Cluster, fs *ClientFS) {
		f, err := fs.Create("dir/data.bin")
		if err != nil {
			t.Fatal(err)
		}
		payload := make([]byte, 3<<20)
		rand.New(rand.NewSource(1)).Read(payload)
		if _, err := f.Write(payload); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		f.Close()

		g, err := fs.Open("dir/data.bin")
		if err != nil {
			t.Fatal(err)
		}
		got, err := vfs.ReadAll(g)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("data corrupted through the PFS")
		}
		g.Close()
	})
}

func TestWritesAreAsyncUntilBarrier(t *testing.T) {
	var afterWrite, afterBarrier sim.Time
	runOnCluster(t, testConfig(1), func(c *Cluster, fs *ClientFS) {
		f, _ := fs.Create("f")
		f.Write(make([]byte, 8<<20))
		afterWrite = c.Kernel().Now()
		fs.Barrier()
		afterBarrier = c.Kernel().Now()
		f.Close()
	})
	if afterBarrier <= afterWrite {
		t.Fatalf("barrier did not wait: write=%v barrier=%v", afterWrite, afterBarrier)
	}
	// 8 MB over 4 OSTs at 500 MB/s is ~4 ms of device time; the client-side
	// path alone is ~16 ms (stream bw) so the barrier wait is the seek tail.
	if afterBarrier.Sub(afterWrite) > 100*time.Millisecond {
		t.Fatalf("barrier wait implausibly long: %v", afterBarrier.Sub(afterWrite))
	}
}

func TestSingleWriterNoLockSwitches(t *testing.T) {
	c := runOnCluster(t, testConfig(1), func(c *Cluster, fs *ClientFS) {
		f, _ := fs.Create("solo")
		buf := make([]byte, 1<<20)
		for i := 0; i < 32; i++ {
			f.Write(buf)
		}
		fs.Barrier()
		f.Close()
	})
	if s := c.Stats(); s.LockSwitches != 0 {
		t.Fatalf("single writer caused %d lock switches", s.LockSwitches)
	}
}

func TestSharedFileInterleavingCausesLockSwitches(t *testing.T) {
	k := sim.NewKernel()
	cfg := testConfig(2)
	cfg.DefaultStripeCount = 1 // both ranks hit the same OST object
	c := NewCluster(k, cfg)
	var created vfs.File
	k.Spawn("creator", func(p *sim.Proc) {
		f, err := c.Client(0).Create("shared")
		if err != nil {
			t.Error(err)
			return
		}
		created = f
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	created.Close()
	for rank := 0; rank < 2; rank++ {
		rank := rank
		k.Spawn(fmt.Sprintf("rank%d", rank), func(p *sim.Proc) {
			fs := c.Client(rank)
			f, err := fs.Open("shared")
			if err != nil {
				t.Error(err)
				return
			}
			buf := make([]byte, 64<<10)
			for i := 0; i < 50; i++ {
				// Interleaved segmented layout: rank r writes segment i
				// slot r.
				off := int64(i*2+rank) * int64(len(buf))
				f.WriteAt(buf, off)
				p.Sleep(time.Millisecond) // keep ranks interleaving
			}
			fs.Barrier()
			f.Close()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.LockSwitches < 50 {
		t.Fatalf("interleaved shared-file writers caused only %d lock switches", s.LockSwitches)
	}
}

func TestLayoutRoundRobinAllocation(t *testing.T) {
	runOnCluster(t, testConfig(1), func(c *Cluster, fs *ClientFS) {
		f1, _ := fs.CreateStriped("a", 4, 1<<20)
		f2, _ := fs.CreateStriped("b", 4, 1<<20)
		f1.Close()
		f2.Close()
		_, _, osts1, err := c.DescribeLayout("a")
		if err != nil {
			t.Fatal(err)
		}
		_, _, osts2, err := c.DescribeLayout("b")
		if err != nil {
			t.Fatal(err)
		}
		if osts1[0] == osts2[0] {
			t.Fatalf("consecutive files start on the same OST: %v %v", osts1, osts2)
		}
		count, size, _, _ := c.DescribeLayout("a")
		if count != 4 || size != 1<<20 {
			t.Fatalf("layout = %d/%d", count, size)
		}
	})
}

func TestSharedFileKeepsCreatorLayout(t *testing.T) {
	runOnCluster(t, testConfig(1), func(c *Cluster, fs *ClientFS) {
		f, _ := fs.CreateStriped("shared", 7, 64<<10)
		f.Close()
		g, err := fs.Open("shared")
		if err != nil {
			t.Fatal(err)
		}
		g.Close()
		count, size, _, _ := c.DescribeLayout("shared")
		if count != 7 || size != 64<<10 {
			t.Fatalf("layout = %d/%d", count, size)
		}
	})
}

func TestSequentialSmallWritesCoalesce(t *testing.T) {
	// Contiguous 64 KB writes on one handle merge into large RPCs in the
	// client write-back cache, so they cost about the same as 8 MB writes
	// (Lustre dirty-page behaviour).
	elapsed := func(opSize int) time.Duration {
		var d time.Duration
		runOnCluster(t, testConfig(1), func(c *Cluster, fs *ClientFS) {
			f, _ := fs.Create("f")
			buf := make([]byte, opSize)
			total := 64 << 20
			for written := 0; written < total; written += opSize {
				f.Write(buf)
			}
			fs.Barrier()
			f.Close()
			d = c.Kernel().Now().Duration()
		})
		return d
	}
	small, large := elapsed(64<<10), elapsed(8<<20)
	if small > large*3/2 {
		t.Fatalf("sequential 64K ops (%v) should coalesce to ~8M-op cost (%v)", small, large)
	}
}

func TestScatteredSmallWritesAreSlow(t *testing.T) {
	// Non-contiguous 64 KB writes cannot coalesce: each one becomes its
	// own RPC and seeks on the OST — the access pattern the LSM-tree
	// exists to avoid.
	elapsed := func(strided bool) time.Duration {
		var d time.Duration
		runOnCluster(t, testConfig(1), func(c *Cluster, fs *ClientFS) {
			f, _ := fs.Create("f")
			const op = 64 << 10
			const count = 256
			buf := make([]byte, op)
			for i := 0; i < count; i++ {
				off := int64(i) * op
				if strided {
					// Permuted 4 MB-spaced offsets: far outside the
					// OST's reorder window, so every RPC seeks.
					off = int64((i*67)%count) * (4 << 20)
				}
				f.WriteAt(buf, off)
			}
			fs.Barrier()
			f.Close()
			d = c.Kernel().Now().Duration()
		})
		return d
	}
	seq, scattered := elapsed(false), elapsed(true)
	if scattered < 3*seq {
		t.Fatalf("scattered writes (%v) should be far slower than sequential (%v)", scattered, seq)
	}
}

func TestReadsQueueBehindWrites(t *testing.T) {
	runOnCluster(t, testConfig(1), func(c *Cluster, fs *ClientFS) {
		f, _ := fs.Create("f")
		f.Write(make([]byte, 32<<20))
		// Immediately read: must wait for the outstanding writes on the
		// same OSTs to drain first.
		before := c.Kernel().Now()
		buf := make([]byte, 1<<20)
		f.ReadAt(buf, 0)
		readTime := c.Kernel().Now().Sub(before)
		f.Close()
		// A pure 1 MB read is ~2-5 ms; queued behind ~64 MB-equivalent of
		// device work it must take visibly longer than an uncontended read.
		if readTime < 3*time.Millisecond {
			t.Fatalf("read did not queue behind writes: %v", readTime)
		}
	})
}

func TestMetadataOpsAreCharged(t *testing.T) {
	c := runOnCluster(t, testConfig(1), func(c *Cluster, fs *ClientFS) {
		f, _ := fs.Create("a")
		f.Close()
		fs.Stat("a")
		fs.List(".")
		fs.Rename("a", "b")
		fs.Remove("b")
	})
	if s := c.Stats(); s.MetadataOps < 5 {
		t.Fatalf("metadata ops = %d", s.MetadataOps)
	}
	if c.Kernel().Now() == 0 {
		t.Fatal("metadata ops charged no time")
	}
}

func TestDirtyLagBackpressure(t *testing.T) {
	cfg := testConfig(1)
	cfg.MaxDirtyLag = time.Millisecond // tiny window forces stalls
	c := runOnCluster(t, cfg, func(c *Cluster, fs *ClientFS) {
		f, _ := fs.Create("f")
		for i := 0; i < 16; i++ {
			f.Write(make([]byte, 4<<20))
		}
		fs.Barrier()
		f.Close()
	})
	if s := c.Stats(); s.ClientStalls == 0 {
		t.Fatal("expected client stalls with a tiny dirty window")
	}
}

func TestMkdirAllAndList(t *testing.T) {
	runOnCluster(t, testConfig(1), func(c *Cluster, fs *ClientFS) {
		if err := fs.MkdirAll("x/y/z"); err != nil {
			t.Fatal(err)
		}
		f, _ := fs.Create("x/y/z/file")
		f.Close()
		names, err := fs.List("x/y/z")
		if err != nil || len(names) != 1 || names[0] != "file" {
			t.Fatalf("list: %v %v", names, err)
		}
		if !fs.Exists("x/y/z/file") || fs.Exists("x/nope") {
			t.Fatal("exists checks failed")
		}
	})
}

func TestWriteBackCoalescing(t *testing.T) {
	// 64 sequential 64K writes must reach the wire as few large RPCs
	// (MaxRPCSize = 4 MB), not 64 small ones.
	c := runOnCluster(t, testConfig(1), func(c *Cluster, fs *ClientFS) {
		f, _ := fs.Create("seq")
		buf := make([]byte, 64<<10)
		for i := 0; i < 64; i++ { // 4 MB total
			f.Write(buf)
		}
		fs.Barrier()
		f.Close()
	})
	s := c.Stats()
	// 4 MB over stripe count 4 = 4 runs (one per OST) at most a couple of
	// flush boundaries.
	if s.WriteOps > 12 {
		t.Fatalf("sequential writes produced %d RPCs; coalescing broken", s.WriteOps)
	}
	if s.BytesWritten != 4<<20 {
		t.Fatalf("bytes written = %d", s.BytesWritten)
	}
}

func TestNonContiguousWritesFlushEagerly(t *testing.T) {
	c := runOnCluster(t, testConfig(1), func(c *Cluster, fs *ClientFS) {
		f, _ := fs.Create("scatter")
		buf := make([]byte, 64<<10)
		for i := 0; i < 16; i++ {
			f.WriteAt(buf, int64(i)*(8<<20)) // 8 MB apart: never contiguous
		}
		fs.Barrier()
		f.Close()
	})
	if s := c.Stats(); s.WriteOps < 16 {
		t.Fatalf("non-contiguous writes coalesced: %d RPCs", s.WriteOps)
	}
}

func TestReadAheadServesSequentialReads(t *testing.T) {
	c := runOnCluster(t, testConfig(1), func(c *Cluster, fs *ClientFS) {
		f, _ := fs.Create("ra")
		f.Write(make([]byte, 8<<20))
		f.Sync()
		buf := make([]byte, 64<<10)
		for off := int64(0); off < 8<<20; off += 64 << 10 {
			f.ReadAt(buf, off)
		}
		f.Close()
	})
	// 8 MB of sequential 64K reads with 4 MB read-ahead: ~2-4 read RPC
	// batches (per-OST runs), not 128.
	if s := c.Stats(); s.ReadOps > 24 {
		t.Fatalf("sequential reads issued %d RPCs; read-ahead broken", s.ReadOps)
	}
}

func TestRandomReadsBypassReadAhead(t *testing.T) {
	c := runOnCluster(t, testConfig(1), func(c *Cluster, fs *ClientFS) {
		f, _ := fs.Create("rnd")
		f.Write(make([]byte, 8<<20))
		f.Sync()
		buf := make([]byte, 4<<10)
		// Far-apart, descending offsets: never sequential.
		for i := 31; i >= 0; i-- {
			f.ReadAt(buf, int64(i)*(256<<10))
		}
		f.Close()
	})
	s := c.Stats()
	// Each random read is its own RPC (plus the initial write RPCs).
	if s.ReadOps < 32 {
		t.Fatalf("random reads coalesced unexpectedly: %d RPCs", s.ReadOps)
	}
}

func TestOSTStreamCacheAbsorbsFewStreams(t *testing.T) {
	// Two interleaved sequential files: within the stream cache, so only
	// the initial positioning seeks appear.
	cfg := testConfig(1)
	cfg.DefaultStripeCount = 1
	c := runOnCluster(t, cfg, func(c *Cluster, fs *ClientFS) {
		f1, _ := fs.Create("s1")
		f2, _ := fs.Create("s2")
		buf := make([]byte, 1<<20)
		for i := 0; i < 8; i++ {
			f1.Write(buf)
			f2.Write(buf)
		}
		fs.Barrier()
		f1.Close()
		f2.Close()
	})
	if s := c.Stats(); s.Seeks > 4 {
		t.Fatalf("two interleaved streams caused %d seeks", s.Seeks)
	}
}

func TestOSTStreamCacheThrashesWithManyStreams(t *testing.T) {
	// Six interleaved sequential files on one OST exceed the cache
	// (3 streams): every switch seeks.
	cfg := testConfig(1)
	cfg.DefaultStripeCount = 1
	cfg.NumOSTs = 1
	c := runOnCluster(t, cfg, func(c *Cluster, fs *ClientFS) {
		files := make([]vfs.File, 6)
		for i := range files {
			files[i], _ = fs.Create(fmt.Sprintf("t%d", i))
		}
		buf := make([]byte, 1<<20)
		for round := 0; round < 4; round++ {
			for _, f := range files {
				f.Write(buf)
				f.Sync() // force each extent out while interleaving
			}
		}
		for _, f := range files {
			f.Close()
		}
	})
	if s := c.Stats(); s.Seeks < 12 {
		t.Fatalf("stream-cache thrash produced only %d seeks", s.Seeks)
	}
}

func TestClusterDeterminism(t *testing.T) {
	run := func() (sim.Time, Stats) {
		var end sim.Time
		c := runOnCluster(t, testConfig(1), func(c *Cluster, fs *ClientFS) {
			f, _ := fs.Create("d")
			for i := 0; i < 32; i++ {
				f.Write(make([]byte, 128<<10))
			}
			fs.Barrier()
			f.Close()
			end = c.Kernel().Now()
		})
		return end, c.Stats()
	}
	e1, s1 := run()
	e2, s2 := run()
	if e1 != e2 || s1 != s2 {
		t.Fatalf("non-deterministic: %v/%+v vs %v/%+v", e1, s1, e2, s2)
	}
}

func TestOSTUtilizationReporting(t *testing.T) {
	c := runOnCluster(t, testConfig(1), func(c *Cluster, fs *ClientFS) {
		f, _ := fs.Create("u")
		f.Write(make([]byte, 16<<20))
		fs.Barrier()
		f.Close()
	})
	util := c.OSTUtilization()
	if len(util) != 45 {
		t.Fatalf("%d OSTs", len(util))
	}
	busy := 0
	for _, u := range util {
		if u < 0 || u > 1.0001 {
			t.Fatalf("utilization out of range: %v", u)
		}
		if u > 0 {
			busy++
		}
	}
	if busy != 4 { // default stripe count
		t.Fatalf("%d OSTs busy, want 4", busy)
	}
}

func TestNVMeConfigRemovesSeekPenalty(t *testing.T) {
	scatterTime := func(cfg Config) time.Duration {
		var d time.Duration
		runOnCluster(t, cfg, func(c *Cluster, fs *ClientFS) {
			f, _ := fs.Create("f")
			buf := make([]byte, 64<<10)
			for i := 0; i < 128; i++ {
				f.WriteAt(buf, int64((i*67)%128)*(8<<20))
			}
			fs.Barrier()
			f.Close()
			d = c.Kernel().Now().Duration()
		})
		return d
	}
	hdd := scatterTime(VikingConfig(1))
	nvme := scatterTime(NVMeConfig(1))
	if nvme*5 > hdd {
		t.Fatalf("NVMe scattered writes (%v) should be >5x faster than HDD (%v)", nvme, hdd)
	}
}
