package lsmio_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"lsmio"
)

// The facade tests exercise the public API exactly as a downstream user
// would, on both the in-memory FS and the real filesystem.

func TestPublicKVRoundTrip(t *testing.T) {
	mgr, err := lsmio.NewManager("db", lsmio.ManagerOptions{
		Store: lsmio.StoreOptions{FS: lsmio.NewMemFS()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	if err := mgr.Put("key", []byte("value")); err != nil {
		t.Fatal(err)
	}
	if err := mgr.WriteBarrier(); err != nil {
		t.Fatal(err)
	}
	v, err := mgr.Get("key")
	if err != nil || string(v) != "value" {
		t.Fatalf("get: %q %v", v, err)
	}
	if _, err := mgr.Get("absent"); !errors.Is(err, lsmio.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestPublicOnRealFilesystem(t *testing.T) {
	fs, err := lsmio.NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := lsmio.NewManager("store", lsmio.ManagerOptions{
		Store: lsmio.StoreOptions{FS: fs, Backend: lsmio.BackendRocks},
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("checkpoint"), 10000)
	for i := 0; i < 20; i++ {
		mgr.Put(string(rune('a'+i)), payload)
	}
	if err := mgr.WriteBarrier(); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen from disk.
	mgr2, err := lsmio.NewManager("store", lsmio.ManagerOptions{
		Store: lsmio.StoreOptions{FS: fs},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	v, err := mgr2.Get("a")
	if err != nil || !bytes.Equal(v, payload) {
		t.Fatalf("reopen get: %v", err)
	}
}

func TestPublicFStream(t *testing.T) {
	sys, err := lsmio.InitializeFStreams("fsys", lsmio.ManagerOptions{
		Store: lsmio.StoreOptions{FS: lsmio.NewMemFS()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Cleanup()
	f, err := sys.Open("ckpt.bin", lsmio.ModeWrite)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("simulation state"))
	f.Close()
	sys.WriteBarrier()

	g, err := sys.Open("ckpt.bin", lsmio.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 16)
	io.ReadFull(g, data)
	if string(data) != "simulation state" {
		t.Fatalf("got %q", data)
	}
	g.Close()
}

func TestPublicEngineDirect(t *testing.T) {
	db, err := lsmio.OpenDB("engine", lsmio.CheckpointEngineOptions(lsmio.NewMemFS()))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	b := lsmio.NewBatch()
	b.Put([]byte("k1"), []byte("v1"))
	b.Put([]byte("k2"), []byte("v2"))
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	count := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		count++
	}
	if count != 2 {
		t.Fatalf("iterated %d keys", count)
	}
}

func TestPublicPluginRegistration(t *testing.T) {
	lsmio.RegisterADIOS2Plugin()
	if lsmio.ADIOS2PluginName != "lsmio" {
		t.Fatalf("plugin name = %q", lsmio.ADIOS2PluginName)
	}
}

func TestPublicCountersAndStats(t *testing.T) {
	mgr, _ := lsmio.NewManager("db", lsmio.ManagerOptions{
		Store: lsmio.StoreOptions{FS: lsmio.NewMemFS()},
	})
	defer mgr.Close()
	mgr.Put("k", []byte("v"))
	mgr.Get("k")
	c := mgr.Counters()
	if c.Puts != 1 || c.Gets != 1 {
		t.Fatalf("counters: %+v", c)
	}
	mgr.WriteBarrier()
	if s := mgr.EngineStats(); s.Flushes == 0 {
		t.Fatalf("engine stats: %+v", s)
	}
}

func TestPublicSnapshotAndRangeIterator(t *testing.T) {
	db, err := lsmio.OpenDB("snapdb", lsmio.CheckpointEngineOptions(lsmio.NewMemFS()))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 10; i++ {
		db.Put([]byte{byte('a' + i)}, []byte{byte(i)})
	}
	snap, err := db.NewSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	db.Put([]byte("a"), []byte("changed"))
	if v, err := snap.Get([]byte("a")); err != nil || len(v) != 1 {
		t.Fatalf("snapshot get: %q %v", v, err)
	}
	it, err := db.NewRangeIterator([]byte("c"), []byte("f"))
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	n := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		n++
	}
	if n != 3 {
		t.Fatalf("range saw %d keys", n)
	}
	it.SeekToLast()
	if string(it.Key()) != "e" {
		t.Fatalf("last in range = %q", it.Key())
	}
}

func TestPublicRepair(t *testing.T) {
	fs := lsmio.NewMemFS()
	db, err := lsmio.OpenDB("r", lsmio.CheckpointEngineOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("k"), []byte("v"))
	db.Flush()
	db.Close()
	fs.Remove("r/CURRENT")
	if _, err := lsmio.OpenDB("r", lsmio.CheckpointEngineOptions(fs)); err == nil {
		t.Fatal("open after metadata loss should fail")
	}
	sum, err := lsmio.RepairDB("r", lsmio.CheckpointEngineOptions(fs))
	if err != nil || sum.TablesRecovered == 0 {
		t.Fatalf("repair: %+v %v", sum, err)
	}
	db2, err := lsmio.OpenDB("r", lsmio.CheckpointEngineOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if v, err := db2.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("after repair: %q %v", v, err)
	}
	if err := db2.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicStoreFS(t *testing.T) {
	mgr, err := lsmio.NewManager("sfs", lsmio.ManagerOptions{
		Store: lsmio.StoreOptions{FS: lsmio.NewMemFS()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	fs := lsmio.NewStoreFS(mgr)
	f, err := fs.Create("nested/file.txt")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("bytes on an LSM-tree"))
	f.Close()
	size, err := fs.Stat("nested/file.txt")
	if err != nil || size != 20 {
		t.Fatalf("stat: %d %v", size, err)
	}
}

func TestPublicCompressionCodecs(t *testing.T) {
	for _, codec := range []lsmio.CompressionCodec{lsmio.CompressionSnappy, lsmio.CompressionFlate} {
		opts := lsmio.DefaultEngineOptions(lsmio.NewMemFS())
		opts.Compression = codec
		db, err := lsmio.OpenDB("c", opts)
		if err != nil {
			t.Fatal(err)
		}
		payload := bytes.Repeat([]byte("compressible "), 5000)
		db.Put([]byte("k"), payload)
		db.Flush()
		v, err := db.Get([]byte("k"))
		if err != nil || !bytes.Equal(v, payload) {
			t.Fatalf("%s: %v", codec, err)
		}
		db.Close()
	}
}

func TestPublicBatchReadAndScan(t *testing.T) {
	mgr, _ := lsmio.NewManager("br", lsmio.ManagerOptions{
		Store: lsmio.StoreOptions{FS: lsmio.NewMemFS()},
	})
	defer mgr.Close()
	for i := 0; i < 10; i++ {
		mgr.Put(fmt.Sprintf("pre/%d", i), []byte("v"))
	}
	mgr.Put("other", []byte("x"))
	all, err := mgr.ReadBatchAll("pre/")
	if err != nil || len(all) != 10 {
		t.Fatalf("ReadBatchAll: %d %v", len(all), err)
	}
	n := 0
	if err := mgr.Store().Scan("pre/", func(string, []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("scan saw %d", n)
	}
}
