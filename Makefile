GO ?= go

.PHONY: build test check race vet bench bench-smoke pipeline-smoke stability-smoke obs-smoke restore-chaos svc-smoke svc-chaos

build:
	$(GO) build ./...

# Tier-1: fast correctness gate (crash-enumeration sweeps are skipped
# under -short; run `make check` for the full suite).
test:
	$(GO) build ./... && $(GO) test -short ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Full gate: vet + the complete test suite (including the crash-point
# enumeration sweeps in internal/robustness) under the race detector,
# plus a quick-scale end-to-end smoke of the extension figures and an
# observability check over their emitted JSON.
check: vet race restore-chaos svc-chaos svc-smoke obs-smoke

# Multi-tenant service smoke: a simulated lsmiod session with four
# behaved tenants beside a flooding noisy neighbor must keep the
# behaved p99 commit latency within 2x the solo baseline — the
# fair-share admission guarantee, asserted end to end through the
# fabric front.
svc-smoke:
	$(GO) run ./cmd/lsmiod -sim -tenants 4 -shards 4 -noisy -fair -assert-fair 2

# The combined-fault restore chaos sweep (dead OST + corrupt step +
# crash mid-restore, every crash point enumerated) run on its own so a
# restore regression is named in the gate output, not buried in `race`.
restore-chaos:
	$(GO) test -race -run TestRestoreChaosCombinedFaults -v ./internal/robustness/

# End-to-end service chaos: crash a shard at every rebalance phase,
# partition the fabric mid-commit, and kill-and-restart the whole
# daemon — all under the race detector. The invariant is that every
# client-acknowledged commit is restorable and tenants only ever see
# typed retryable errors. Failures dump the obs trace ring plus the
# full metrics table (TRACE_*.txt) for CI to upload.
svc-chaos:
	$(GO) test -race -run TestServiceChaos -v ./internal/robustness/

# Quick-scale run of the extension figures. The BENCH_*.json files land
# at the repo root so the perf trajectory is versioned with the code,
# not just buried in CI artifacts.
bench-smoke:
	$(GO) run ./cmd/lsmio-bench -fig ext-nvme -scale quick -json . -q
	$(GO) run ./cmd/lsmio-bench -fig ext-burst -scale quick -json . -q
	$(GO) run ./cmd/lsmio-bench -fig ext-degraded -scale quick -json . -q
	$(GO) run ./cmd/lsmio-bench -fig ext-compaction -scale quick -json . -q
	$(GO) run ./cmd/lsmio-bench -fig ext-restore -scale quick -json . -q
	$(GO) run ./cmd/lsmio-bench -fig ext-service -scale quick -json . -q

# Write-path pipelining smoke: the ext-pipeline figure's shape checks
# are the throughput gate for the table-build pipeline (≥1.3× serial
# flush at 4 encode workers), piped compaction, and WAL group commit.
pipeline-smoke:
	$(GO) run ./cmd/lsmio-bench -fig ext-pipeline -scale quick -json . -q

# Sustained-load stability smoke: the ext-stability figure's shape
# checks are the gate for the shared I/O bandwidth scheduler
# (internal/iosched) — scheduler-on must show strictly lower windowed
# throughput CoV and p999 drift than scheduler-off at no more than 5%
# mean-throughput cost, and improve foreground commit p99 under a
# compaction storm with concurrent scrub traffic.
stability-smoke:
	$(GO) run ./cmd/lsmio-bench -fig ext-stability -scale quick -json . -q

# Observability smoke: every extension figure's JSON must embed the
# unified obs registry snapshot ("metrics") with per-op latency
# quantiles down to p999 — the guarantee that every layer is still
# plumbed through internal/obs.
obs-smoke: bench-smoke pipeline-smoke stability-smoke
	@for f in BENCH_ext-nvme.json BENCH_ext-burst.json BENCH_ext-degraded.json BENCH_ext-compaction.json BENCH_ext-restore.json BENCH_ext-service.json BENCH_ext-pipeline.json BENCH_ext-stability.json; do \
		grep -q '"metrics"' $$f || { echo "obs-smoke: $$f missing metrics snapshot" >&2; exit 1; }; \
		grep -q '"p999"' $$f || { echo "obs-smoke: $$f missing latency quantiles" >&2; exit 1; }; \
	done; echo "obs-smoke: all extension figures embed registry snapshots"

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
