GO ?= go

.PHONY: build test check race vet bench

build:
	$(GO) build ./...

# Tier-1: fast correctness gate (crash-enumeration sweeps are skipped
# under -short; run `make check` for the full suite).
test:
	$(GO) build ./... && $(GO) test -short ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Full gate: vet + the complete test suite (including the crash-point
# enumeration sweeps in internal/robustness) under the race detector.
check: vet race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
