GO ?= go

.PHONY: build test check race vet bench bench-smoke

build:
	$(GO) build ./...

# Tier-1: fast correctness gate (crash-enumeration sweeps are skipped
# under -short; run `make check` for the full suite).
test:
	$(GO) build ./... && $(GO) test -short ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Full gate: vet + the complete test suite (including the crash-point
# enumeration sweeps in internal/robustness) under the race detector,
# plus a quick-scale end-to-end smoke of the extension figures.
check: vet race bench-smoke

# Quick-scale run of the extension figures. The BENCH_*.json files land
# at the repo root so the perf trajectory is versioned with the code,
# not just buried in CI artifacts.
bench-smoke:
	$(GO) run ./cmd/lsmio-bench -fig ext-nvme -scale quick -json . -q
	$(GO) run ./cmd/lsmio-bench -fig ext-burst -scale quick -json . -q
	$(GO) run ./cmd/lsmio-bench -fig ext-degraded -scale quick -json . -q
	$(GO) run ./cmd/lsmio-bench -fig ext-compaction -scale quick -json . -q

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
