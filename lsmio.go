// Package lsmio is an I/O library for HPC checkpointing that routes
// scientific data — not just metadata — through a log-structured merge
// tree, so that checkpoint writes reach a parallel file system as large
// sequential appends. It is a from-scratch Go implementation of LSMIO
// (Bulut & Wright, "Optimizing Write Performance for Checkpointing to
// Parallel File Systems Using LSM-Trees", SC-W 2023), including every
// subsystem the paper builds on: the LSM-tree storage engine itself (in
// the role of RocksDB), the three public interfaces (K/V Manager,
// IOStream-like FStream, and an ADIOS2 storage plugin), the collective
// I/O extension, and a simulated Lustre cluster + IOR benchmark that
// regenerate the paper's evaluation figures.
//
// # Quick start
//
//	fs, _ := lsmio.NewOSFS("/tmp/ckpt")
//	mgr, _ := lsmio.NewManager("store", lsmio.ManagerOptions{
//		Store: lsmio.StoreOptions{FS: fs},
//	})
//	defer mgr.Close()
//	mgr.Put("state/rank0/step42", payload)
//	mgr.WriteBarrier() // everything durable when this returns
//
// The three interfaces share one store: the K/V API (Manager), the
// FStream API (NewFStreamSystem), and — for ADIOS2-style applications —
// the plugin registered by RegisterADIOS2Plugin, selected purely through
// configuration.
//
// Packages under internal/ hold the implementation: internal/lsm (the
// storage engine), internal/core (manager, stores, fstream, collective),
// internal/pfs + internal/sim (the simulated Lustre cluster), and
// internal/ior + internal/bench (the paper's evaluation).
package lsmio

import (
	"lsmio/internal/core"
	"lsmio/internal/lsm"
	"lsmio/internal/lsmioplugin"
	"lsmio/internal/obs"
	"lsmio/internal/vfs"
)

// Re-exported interfaces and types. These are aliases, so values flow
// freely between this package and the internal implementation.
type (
	// FS is the filesystem abstraction all LSMIO I/O goes through.
	FS = vfs.FS
	// File is an open file on an FS.
	File = vfs.File

	// Store is the local K/V store over the LSM-tree (paper Table 1).
	Store = core.Store
	// StoreOptions configures a Store.
	StoreOptions = core.StoreOptions
	// Backend selects the rocks-style or level-style local store.
	Backend = core.Backend

	// Manager is the external K/V API with MPI integration and
	// performance counters (paper Table 2).
	Manager = core.Manager
	// ManagerOptions configures a Manager.
	ManagerOptions = core.ManagerOptions
	// Counters are the Manager's performance counters.
	Counters = core.Counters
	// CostProfile is the simulation CPU cost model (ignored on real
	// filesystems).
	CostProfile = core.CostProfile

	// FStream is the C++ IOStream-like API (paper Table 3).
	FStream = core.FStream
	// FStreamSystem owns the store behind a set of FStreams.
	FStreamSystem = core.FStreamSystem
	// OpenMode selects FStream open behaviour.
	OpenMode = core.OpenMode

	// EngineOptions exposes the LSM engine's full option set for direct
	// engine use.
	EngineOptions = lsm.Options
	// EngineStats are the LSM engine's counters.
	EngineStats = lsm.Stats
	// DB is the underlying LSM-tree database, usable directly as a
	// general-purpose embedded store.
	DB = lsm.DB
	// Batch collects writes applied atomically to a DB.
	Batch = lsm.Batch
	// Iterator walks a DB snapshot in key order.
	Iterator = lsm.Iterator
	// DBSnapshot is a consistent point-in-time read view of a DB.
	DBSnapshot = lsm.Snapshot

	// MetricsRegistry is the unified metrics/trace registry every layer
	// records into (internal/obs). A Manager's registry covers the
	// `core.*` session counters and the engine's `lsm.*` statistics.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a registry's
	// instruments, with Delta/Merge/Tree/WriteTable views.
	MetricsSnapshot = obs.Snapshot
	// TraceEvent is one structured event from a registry's bounded
	// trace ring (flushes, compactions, stalls, hedges, drains...).
	TraceEvent = obs.Event
)

// CompressionCodec names a block-compression algorithm for the engine.
type CompressionCodec = lsm.CompressionCodec

// Block codecs (used when compression is enabled; the paper's checkpoint
// configuration disables compression entirely).
const (
	// CompressionSnappy is the RocksDB-default codec (from-scratch
	// implementation in internal/snappy).
	CompressionSnappy = lsm.CompressionSnappy
	// CompressionFlate is DEFLATE at the fastest level.
	CompressionFlate = lsm.CompressionFlate
)

// Backend choices (paper §3.1.2).
const (
	// BackendRocks disables the write-ahead log outright (the paper's
	// configuration; durability via the write barrier).
	BackendRocks = core.BackendRocks
	// BackendLevel keeps the WAL on and aggregates writes in a batch,
	// emulating the LevelDB constraint.
	BackendLevel = core.BackendLevel
)

// FStream open modes.
const (
	ModeRead      = core.ModeRead
	ModeWrite     = core.ModeWrite
	ModeReadWrite = core.ModeReadWrite
)

// ErrNotFound reports a missing key.
var ErrNotFound = core.ErrNotFound

// NewOSFS returns an FS rooted at a directory of the real filesystem.
func NewOSFS(dir string) (FS, error) { return vfs.NewOSFS(dir) }

// NewMemFS returns an in-memory FS, convenient for tests.
func NewMemFS() FS { return vfs.NewMemFS() }

// OpenStore opens a local store in dir (paper Table 1 interface).
func OpenStore(dir string, opts StoreOptions) (Store, error) {
	return core.OpenStore(dir, opts)
}

// NewManager opens a Manager over a local store in dir.
func NewManager(dir string, opts ManagerOptions) (*Manager, error) {
	return core.NewManager(dir, opts)
}

// GetManager is the factory method: one shared Manager per directory.
func GetManager(dir string, opts ManagerOptions) (*Manager, error) {
	return core.GetManager(dir, opts)
}

// ReleaseManager closes and unregisters a factory-created Manager.
func ReleaseManager(dir string) error { return core.ReleaseManager(dir) }

// StoreFS adapts an LSMIO store as an FS: byte-oriented formats run
// unmodified on top of the LSM-tree, PLFS-style.
type StoreFS = core.StoreFS

// NewStoreFS wraps a Manager as a filesystem.
func NewStoreFS(mgr *Manager) *StoreFS { return core.NewStoreFS(mgr) }

// NewFStreamSystem wraps a Manager with the FStream API.
func NewFStreamSystem(mgr *Manager) *FStreamSystem {
	return core.NewFStreamSystem(mgr)
}

// InitializeFStreams opens an FStream system over a fresh Manager
// (Table 3's static initialize()).
func InitializeFStreams(dir string, opts ManagerOptions) (*FStreamSystem, error) {
	return core.InitializeFStreams(dir, opts)
}

// OpenDB opens the LSM engine directly with full engine options.
func OpenDB(dir string, opts EngineOptions) (*DB, error) {
	return lsm.Open(dir, opts)
}

// DefaultEngineOptions returns LevelDB/RocksDB-like engine defaults.
func DefaultEngineOptions(fs FS) EngineOptions { return lsm.DefaultOptions(fs) }

// CheckpointEngineOptions returns the paper's checkpoint configuration:
// WAL, compression, cache and compaction disabled, asynchronous flushing,
// 32 MB write buffer (§3.1.1).
func CheckpointEngineOptions(fs FS) EngineOptions { return lsm.CheckpointOptions(fs) }

// NewBatch returns an empty write batch.
func NewBatch() *Batch { return lsm.NewBatch() }

// RepairSummary reports what RepairDB salvaged.
type RepairSummary = lsm.RepairSummary

// RepairDB rebuilds a database whose manifest or CURRENT file was lost or
// corrupted, from the surviving table and log files (checksums verified;
// unreadable files skipped and reported).
func RepairDB(dir string, opts EngineOptions) (RepairSummary, error) {
	return lsm.Repair(dir, opts)
}

// RegisterADIOS2Plugin installs LSMIO as an ADIOS2 storage plugin under
// the name "lsmio" (paper §3.1.7). ADIOS2-style applications then select
// it with engine type "plugin" and parameter PluginName=lsmio — through
// code or XML configuration — with no other changes.
func RegisterADIOS2Plugin() { lsmioplugin.Register() }

// ADIOS2PluginName is the registered plugin name.
const ADIOS2PluginName = lsmioplugin.PluginName
