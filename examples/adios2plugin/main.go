// ADIOS2 plugin demo: the paper's headline usability claim (§3.1.7, §4.3)
// — an ADIOS2 application switches its storage layer to LSMIO by editing
// only its XML configuration, with zero code changes.
//
// The same unmodified writer/reader function runs twice: once with the
// BP5-style engine selected, once with the LSMIO plugin selected, the
// choice coming entirely from the XML document.
//
//	go run ./examples/adios2plugin
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"lsmio"
	"lsmio/internal/adios2"
	"lsmio/internal/vfs"
)

// xmlConfig is what the operator edits; nothing else changes between the
// two runs.
const xmlBP5 = `
<adios-config>
  <io name="checkpoint">
    <engine type="BP5">
      <parameter key="BufferChunkSize" value="4194304"/>
    </engine>
  </io>
</adios-config>`

const xmlLSMIO = `
<adios-config>
  <io name="checkpoint">
    <engine type="plugin">
      <parameter key="PluginName" value="lsmio"/>
      <parameter key="BufferChunkSize" value="4194304"/>
    </engine>
  </io>
</adios-config>`

const n = 1 << 16 // 64K float64s per variable

// application is the unmodified ADIOS2 user code: it has no idea which
// engine the configuration selected.
func application(a *adios2.Adios, path string) error {
	io := a.DeclareIO("checkpoint")
	temp := io.DefineVariable("temperature", 8, n)
	pres := io.DefineVariable("pressure", 8, n)

	// Write phase.
	w, err := io.Open(path, adios2.ModeWrite)
	if err != nil {
		return err
	}
	tData, pData := make([]byte, 8*n), make([]byte, 8*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(tData[8*i:], math.Float64bits(280+20*math.Sin(float64(i)/500)))
		binary.LittleEndian.PutUint64(pData[8*i:], math.Float64bits(101e3+50*math.Cos(float64(i)/900)))
	}
	if err := w.Put(temp, tData, adios2.Deferred); err != nil {
		return err
	}
	if err := w.Put(pres, pData, adios2.Deferred); err != nil {
		return err
	}
	if err := w.PerformPuts(); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}

	// Read phase.
	r, err := io.Open(path, adios2.ModeRead)
	if err != nil {
		return err
	}
	tBack, pBack := make([]byte, 8*n), make([]byte, 8*n)
	if err := r.Get(temp, tBack); err != nil {
		return err
	}
	if err := r.Get(pres, pBack); err != nil {
		return err
	}
	if err := r.Close(); err != nil {
		return err
	}
	if !bytes.Equal(tData, tBack) || !bytes.Equal(pData, pBack) {
		return fmt.Errorf("read-back mismatch")
	}
	t0 := math.Float64frombits(binary.LittleEndian.Uint64(tBack))
	fmt.Printf("  verified %d variables x %d elements (temperature[0] = %.2f K)\n", 2, n, t0)
	return nil
}

func run(label, xml string, fs vfs.FS, path string) {
	fmt.Printf("%s\n", label)
	a, err := adios2.NewFromConfig(adios2.Config{FS: fs}, []byte(xml))
	if err != nil {
		log.Fatal(err)
	}
	if err := application(a, path); err != nil {
		log.Fatal(err)
	}
	// Show what actually landed on storage.
	names, _ := fs.List(".")
	fmt.Printf("  storage artifacts: %v\n\n", names)
}

func main() {
	// The plugin registers once at program start (a real deployment loads
	// it as a shared library; here it is a package).
	lsmio.RegisterADIOS2Plugin()

	fmt.Println("same application code, two XML configurations:")
	fmt.Println()
	run("engine BP5 (ADIOS2 default):", xmlBP5, vfs.NewMemFS(), "out")
	run("engine plugin/lsmio (LSM-tree storage):", xmlLSMIO, vfs.NewMemFS(), "out")
	fmt.Println("the second run wrote through the LSM-tree: no .bp subfiles,")
	fmt.Println("just the plugin's per-rank LSMIO store directories.")
}
