// Quickstart: the LSMIO public API on the real filesystem.
//
// It exercises the three interfaces from the paper's Figure 3 against one
// store: the K/V Manager (typed puts, append, write barrier), the
// IOStream-like FStream API, and direct engine access with an iterator,
// then prints the performance counters.
//
//	go run ./examples/quickstart [dir]
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"os"

	"lsmio"
)

func main() {
	dir := "lsmio-quickstart"
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	fs, err := lsmio.NewOSFS(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store directory: %s\n\n", dir)

	// --- K/V API (paper Table 2) ---------------------------------------
	mgr, err := lsmio.NewManager("store", lsmio.ManagerOptions{
		Store: lsmio.StoreOptions{
			FS:      fs,
			Backend: lsmio.BackendRocks, // WAL off; durability via barrier
			Async:   true,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := mgr.PutString("run/name", "quickstart"); err != nil {
		log.Fatal(err)
	}
	mgr.PutInt64("run/step", 42)
	mgr.PutFloat64("run/time", 3.14159)
	state := bytes.Repeat([]byte{0xCA, 0xFE}, 1<<19) // 1 MB of "field data"
	mgr.Put("field/density", state)
	mgr.Append("log", []byte("step 42 checkpointed; "))
	mgr.Append("log", []byte("all ranks healthy"))

	// The write barrier is the durability point (the paper's implicit
	// end-of-checkpoint flush).
	if err := mgr.WriteBarrier(); err != nil {
		log.Fatal(err)
	}

	step, _ := mgr.GetInt64("run/step")
	simTime, _ := mgr.GetFloat64("run/time")
	logLine, _ := mgr.Get("log")
	fmt.Printf("K/V API:    step=%d time=%.5f log=%q\n", step, simTime, logLine)

	// --- FStream API (paper Table 3) ------------------------------------
	streams := lsmio.NewFStreamSystem(mgr)
	f, err := streams.Open("restart.dat", lsmio.ModeWrite)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(f, "restart file written through an iostream-like API at position %d", f.TellP())
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	streams.WriteBarrier()

	g, _ := streams.Open("restart.dat", lsmio.ModeRead)
	content, _ := io.ReadAll(g)
	g.Close()
	fmt.Printf("FStream:    %q\n", content)

	// --- counters -------------------------------------------------------
	c := mgr.Counters()
	es := mgr.EngineStats()
	fmt.Printf("counters:   puts=%d gets=%d appends=%d barriers=%d bytes=%d\n",
		c.Puts, c.Gets, c.Appends, c.Barriers, c.BytesPut)
	fmt.Printf("engine:     flushes=%d bytesFlushed=%d walBytes=%d\n",
		es.Flushes, es.BytesFlushed, es.WALBytes)
	if err := mgr.Close(); err != nil {
		log.Fatal(err)
	}

	// --- direct engine access -------------------------------------------
	db, err := lsmio.OpenDB("store", lsmio.CheckpointEngineOptions(fs))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	it, err := db.NewIterator()
	if err != nil {
		log.Fatal(err)
	}
	defer it.Close()
	fmt.Println("\nkeys on disk (via engine iterator):")
	for it.SeekToFirst(); it.Valid(); it.Next() {
		fmt.Printf("  %-24s %6d bytes\n", it.Key(), len(it.Value()))
	}
}
