// Restart demo for the ckpt package: versioned checkpoints with
// manifests, integrity verification, retention, and crash-atomic commit,
// on the real filesystem.
//
// The program simulates an application that checkpoints every few steps,
// "crashes" mid-checkpoint (data written, manifest not yet committed),
// and then restarts — recovering the last *committed* step, never the
// torn one.
//
//	go run ./examples/restart [dir]
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"lsmio"
	"lsmio/ckpt"
)

func openStore(dir string) (*ckpt.Store, *lsmio.Manager) {
	fs, err := lsmio.NewOSFS(dir)
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := lsmio.NewManager("store", lsmio.ManagerOptions{
		Store: lsmio.StoreOptions{FS: fs, Async: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	return ckpt.New(mgr, ckpt.Options{Keep: 2}), mgr
}

func state(step int64) []byte {
	return bytes.Repeat([]byte{byte(step)}, 1<<20) // 1 MB of "field"
}

func main() {
	dir := "lsmio-restart-demo"
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}

	// --- first life: checkpoint steps 10, 20, 30; crash during 40 ------
	store, mgr := openStore(dir)
	for _, step := range []int64{10, 20, 30} {
		c, err := store.Begin(step)
		if err != nil {
			log.Fatal(err)
		}
		c.Write("field", state(step))
		c.Write("meta", []byte(fmt.Sprintf("step=%d", step)))
		if err := c.Commit(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("committed checkpoint %d\n", step)
	}
	// Step 40: data written but the process dies before Commit.
	torn, _ := store.Begin(40)
	torn.Write("field", state(40))
	fmt.Println("writing checkpoint 40... simulated crash before commit!")
	mgr.Close() // the "crash" (close just releases; no manifest was written)

	// --- second life: restart -----------------------------------------
	store2, mgr2 := openStore(dir)
	defer mgr2.Close()

	steps, err := store2.Steps()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter restart, committed checkpoints: %v (retention keeps 2)\n", steps)

	latest, err := store2.Latest()
	if err != nil {
		log.Fatal(err)
	}
	all, err := store2.ReadAll(latest) // one sequential batch read
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(all["field"], state(latest)) {
		log.Fatal("recovered state does not match")
	}
	fmt.Printf("recovered step %d: %d variables, %d bytes of field data, checksums ok\n",
		latest, len(all), len(all["field"]))
	fmt.Printf("meta: %s\n", all["meta"])
	fmt.Println("\nthe torn checkpoint 40 is invisible: its manifest was never committed.")
}
