// Checkpoint/restart of a real (small) scientific computation on the
// simulated Viking cluster: 16 MPI ranks advance a 1-D heat-diffusion
// stencil with halo exchange, checkpoint their state periodically, then
// "crash" and restart from the last checkpoint, verifying the recovered
// field bit-for-bit.
//
// The same run is performed three times — checkpointing through LSMIO
// (per-rank LSM stores, write barrier), through plain POSIX writes to
// one shared striped file, and through the burst-buffer staging tier
// (commits land in node-local memory, a background worker drains them
// to the PFS-backed store) — and the virtual time spent inside
// checkpoints is compared, reproducing the paper's core claim at
// application level rather than with IOR.
//
//	go run ./examples/checkpoint
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"lsmio/ckpt"
	"lsmio/internal/burst"
	"lsmio/internal/core"
	"lsmio/internal/lsm"
	"lsmio/internal/mpisim"
	"lsmio/internal/pfs"
	"lsmio/internal/sim"
	"lsmio/internal/vfs"
)

const (
	ranks        = 16
	cellsPerRank = 1 << 17 // 128K float64 cells per rank (1 MB)
	steps        = 30
	ckptEvery    = 10
	// The field is checkpointed as nVars separate variables (a realistic
	// multi-field application layout): per-variable records interleave
	// across ranks in the shared-file layout, exactly the pattern that
	// hurts N-to-1 POSIX checkpoints.
	nVars = 64
)

const varBytes = 8 * cellsPerRank / nVars

// stencil advances u one explicit diffusion step with halo exchange.
func stencil(r *mpisim.Rank, u []float64) []float64 {
	left, right := -1.0, -1.0 // boundary value outside the domain
	// Exchange halos with neighbours (eager sends cannot deadlock).
	if r.Rank() > 0 {
		r.Send(r.Rank()-1, 1, u[0], 8)
	}
	if r.Rank() < r.Size()-1 {
		r.Send(r.Rank()+1, 2, u[len(u)-1], 8)
	}
	if r.Rank() < r.Size()-1 {
		right = r.Recv(r.Rank()+1, 1).(float64)
	}
	if r.Rank() > 0 {
		left = r.Recv(r.Rank()-1, 2).(float64)
	}
	if r.Rank() == 0 {
		left = u[0]
	}
	if r.Rank() == r.Size()-1 {
		right = u[len(u)-1]
	}
	next := make([]float64, len(u))
	for i := range u {
		l, rr := left, right
		if i > 0 {
			l = u[i-1]
		}
		if i < len(u)-1 {
			rr = u[i+1]
		}
		next[i] = u[i] + 0.25*(l-2*u[i]+rr)
	}
	return next
}

func initField(rank int) []float64 {
	u := make([]float64, cellsPerRank)
	for i := range u {
		x := float64(rank*cellsPerRank+i) / float64(ranks*cellsPerRank)
		u[i] = math.Sin(2*math.Pi*x) + 0.5*math.Sin(14*math.Pi*x)
	}
	return u
}

func encode(u []float64) []byte {
	b := make([]byte, 8*len(u))
	for i, v := range u {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return b
}

func decode(b []byte) []float64 {
	u := make([]float64, len(b)/8)
	for i := range u {
		u[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return u
}

// checkpointer abstracts the two checkpoint paths.
type checkpointer interface {
	save(step int, state []byte) error
	barrier() error
	load(step int) ([]byte, error)
}

type lsmioCkpt struct{ mgr *core.Manager }

func (c *lsmioCkpt) save(step int, state []byte) error {
	for v := 0; v < nVars; v++ {
		key := fmt.Sprintf("ckpt/step%06d/var%03d", step, v)
		if err := c.mgr.Put(key, state[v*varBytes:(v+1)*varBytes]); err != nil {
			return err
		}
	}
	return nil
}
func (c *lsmioCkpt) barrier() error { return c.mgr.WriteBarrier() }
func (c *lsmioCkpt) load(step int) ([]byte, error) {
	state := make([]byte, 8*cellsPerRank)
	for v := 0; v < nVars; v++ {
		key := fmt.Sprintf("ckpt/step%06d/var%03d", step, v)
		chunk, err := c.mgr.Get(key)
		if err != nil {
			return nil, err
		}
		copy(state[v*varBytes:], chunk)
	}
	return state, nil
}

type posixCkpt struct {
	fs   *pfs.ClientFS
	r    *mpisim.Rank
	path string
}

// off places (step, var, rank) in the shared file: variable-major within
// a step, ranks back to back within a variable — the usual N-to-1
// checkpoint layout.
func (c *posixCkpt) off(step, v int) int64 {
	stepBase := int64(step/ckptEvery) * int64(ranks) * 8 * cellsPerRank
	return stepBase + int64(v)*int64(ranks)*varBytes + int64(c.r.Rank())*varBytes
}

func (c *posixCkpt) save(step int, state []byte) error {
	f, err := c.fs.Open(c.path)
	if err != nil {
		return err
	}
	defer f.Close()
	for v := 0; v < nVars; v++ {
		if _, err := f.WriteAt(state[v*varBytes:(v+1)*varBytes], c.off(step, v)); err != nil {
			return err
		}
	}
	return f.Sync()
}
func (c *posixCkpt) barrier() error {
	if err := c.fs.Barrier(); err != nil {
		return err
	}
	c.r.Barrier()
	return nil
}
func (c *posixCkpt) load(step int) ([]byte, error) {
	f, err := c.fs.Open(c.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	state := make([]byte, 8*cellsPerRank)
	for v := 0; v < nVars; v++ {
		if _, err := f.ReadAt(state[v*varBytes:(v+1)*varBytes], c.off(step, v)); err != nil {
			return nil, err
		}
	}
	return state, nil
}

// run executes compute + checkpoints and returns (checkpoint time,
// final field checksum, restart ok).
func run(label string, makeCkpt func(r *mpisim.Rank, c *pfs.Cluster) checkpointer) {
	k := sim.NewKernel()
	cluster := pfs.NewCluster(k, pfs.VikingConfig(ranks))
	world := mpisim.NewWorld(k, cluster.Fabric(), ranks)

	var ckptTime sim.Time
	var checksum float64
	restartOK := true

	world.Launch(func(r *mpisim.Rank) {
		ck := makeCkpt(r, cluster)
		u := initField(r.Rank())
		lastCkpt := -1
		var spent sim.Time
		for step := 1; step <= steps; step++ {
			u = stencil(r, u)
			r.Sleep(2 << 20 / 8 * 2) // ~flops cost of the sweep, in ns
			if step%ckptEvery == 0 {
				t0 := r.Now()
				if err := ck.save(step, encode(u)); err != nil {
					log.Fatalf("%s: save: %v", label, err)
				}
				if err := ck.barrier(); err != nil {
					log.Fatalf("%s: barrier: %v", label, err)
				}
				spent += r.Now() - t0
				lastCkpt = step
			}
		}
		// "Crash": recover the last checkpoint and verify it matches the
		// state we held when we took it (recompute forward to compare).
		saved, err := ck.load(lastCkpt)
		if err != nil {
			log.Fatalf("%s: restart load: %v", label, err)
		}
		recovered := decode(saved)
		if len(recovered) != cellsPerRank {
			restartOK = false
		}
		// The last checkpoint was taken at the final step here, so the
		// recovered field must equal the current one exactly.
		for i := range u {
			if recovered[i] != u[i] {
				restartOK = false
				break
			}
		}
		sum := 0.0
		for _, v := range u {
			sum += v
		}
		total := r.AllreduceF64(sum, func(a, b float64) float64 { return a + b })
		maxSpent := r.MaxTime(spent)
		if r.Rank() == 0 {
			checksum = total
			ckptTime = maxSpent
		}
	})
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
	bytesPerCkpt := float64(ranks) * 8 * cellsPerRank
	nCkpts := float64(steps / ckptEvery)
	bw := bytesPerCkpt * nCkpts / ckptTime.Seconds()
	fmt.Printf("%-22s checkpoint time %10v   bandwidth %8.1f MB/s   restart ok: %v   checksum %.6f\n",
		label, ckptTime.Duration(), bw/1e6, restartOK, checksum)
}

// runBurst repeats the computation checkpointing through the burst
// staging tier: commits return as soon as the step is staged-consistent
// in node-local memory while a background worker drains completed steps
// to the PFS-backed store. Two times matter — the stall the application
// sees at each commit, and the extra tail after the last compute step
// until everything is durable on the PFS.
func runBurst() {
	k := sim.NewKernel()
	cluster := pfs.NewCluster(k, pfs.VikingConfig(ranks))
	world := mpisim.NewWorld(k, cluster.Fabric(), ranks)

	var stagedTime, drainTail sim.Time
	var checksum float64
	restartOK := true

	world.Launch(func(r *mpisim.Rank) {
		staging, err := core.NewManager(fmt.Sprintf("stage/rank%03d", r.Rank()),
			core.ManagerOptions{
				Store:  core.StoreOptions{FS: vfs.NewMemFS(), Platform: lsm.SimPlatform(k)},
				Kernel: k,
			})
		if err != nil {
			log.Fatal(err)
		}
		durable, err := core.NewManager(fmt.Sprintf("app.burst/rank%03d", r.Rank()),
			core.ManagerOptions{
				Store: core.StoreOptions{
					FS:       cluster.Client(r.Rank()),
					Platform: lsm.SimPlatform(k),
					Async:    true,
				},
				Kernel: k,
			})
		if err != nil {
			log.Fatal(err)
		}
		tier := burst.New(
			ckpt.New(staging, ckpt.Options{}),
			ckpt.New(durable, ckpt.Options{}),
			burst.Options{StagingBudget: 4 * 8 * cellsPerRank, Kernel: k},
		)
		tier.StartWorker()

		u := initField(r.Rank())
		lastCkpt := int64(-1)
		var spent sim.Time
		for step := 1; step <= steps; step++ {
			u = stencil(r, u)
			r.Sleep(2 << 20 / 8 * 2)
			if step%ckptEvery == 0 {
				t0 := r.Now()
				c, err := tier.Begin(int64(step))
				if err != nil {
					log.Fatalf("burst: begin: %v", err)
				}
				state := encode(u)
				for v := 0; v < nVars; v++ {
					if err := c.Write(fmt.Sprintf("var%03d", v),
						state[v*varBytes:(v+1)*varBytes]); err != nil {
						log.Fatalf("burst: write: %v", err)
					}
				}
				if err := c.Commit(); err != nil {
					log.Fatalf("burst: commit: %v", err)
				}
				spent += r.Now() - t0
				lastCkpt = int64(step)
			}
		}
		computeEnd := r.Now()
		if err := tier.Sync(); err != nil {
			log.Fatalf("burst: sync: %v", err)
		}
		tail := r.Now() - computeEnd

		// "Crash": the tier restores the newest complete image, staged
		// or durable — here everything has drained, so it comes from
		// the PFS-backed store.
		restStep, vars, err := tier.RestoreLatest()
		if err != nil {
			log.Fatalf("burst: restore: %v", err)
		}
		if restStep != lastCkpt {
			restartOK = false
		}
		state := make([]byte, 8*cellsPerRank)
		for v := 0; v < nVars; v++ {
			copy(state[v*varBytes:], vars[fmt.Sprintf("var%03d", v)])
		}
		recovered := decode(state)
		for i := range u {
			if recovered[i] != u[i] {
				restartOK = false
				break
			}
		}
		if err := tier.Close(); err != nil {
			log.Fatalf("burst: close: %v", err)
		}
		if err := durable.Close(); err != nil {
			log.Fatalf("burst: close durable: %v", err)
		}
		if err := staging.Close(); err != nil {
			log.Fatalf("burst: close staging: %v", err)
		}

		sum := 0.0
		for _, v := range u {
			sum += v
		}
		total := r.AllreduceF64(sum, func(a, b float64) float64 { return a + b })
		maxSpent := r.MaxTime(spent)
		maxTail := r.MaxTime(tail)
		if r.Rank() == 0 {
			checksum = total
			stagedTime = maxSpent
			drainTail = maxTail
		}
	})
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s staged stall    %10v   drain tail %10v   restart ok: %v   checksum %.6f\n",
		"burst (staged drain)", stagedTime.Duration(), drainTail.Duration(), restartOK, checksum)
}

func main() {
	fmt.Printf("heat-diffusion stencil on %d simulated ranks, %d steps, checkpoint every %d\n\n",
		ranks, steps, ckptEvery)

	run("LSMIO (K/V + barrier)", func(r *mpisim.Rank, c *pfs.Cluster) checkpointer {
		mgr, err := core.NewManager(fmt.Sprintf("app.lsmio/rank%03d", r.Rank()),
			core.ManagerOptions{
				Store: core.StoreOptions{
					FS:       c.Client(r.Rank()),
					Platform: lsm.SimPlatform(c.Kernel()),
					Async:    true,
				},
				Kernel: c.Kernel(),
				MPI:    r,
			})
		if err != nil {
			log.Fatal(err)
		}
		return &lsmioCkpt{mgr: mgr}
	})

	run("POSIX (N-to-1 shared)", func(r *mpisim.Rank, c *pfs.Cluster) checkpointer {
		fs := c.Client(r.Rank())
		path := "app.ckpt"
		if r.Rank() == 0 {
			f, err := fs.CreateStriped(path, 4, 1<<20)
			if err != nil {
				log.Fatal(err)
			}
			f.Close()
		}
		r.Barrier()
		return &posixCkpt{fs: fs, r: r, path: path}
	})

	runBurst()

	fmt.Println("\nthe LSM-tree path turns each rank's checkpoint into large sequential")
	fmt.Println("appends on its own files; the shared-file path pays extent-lock and")
	fmt.Println("interleaving penalties once ranks outnumber the stripe count; the")
	fmt.Println("burst tier hides the PFS write behind compute — the commit stall is")
	fmt.Println("the memory-staging cost, and only the drain tail touches Lustre.")
}
