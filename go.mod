module lsmio

go 1.22
