// Command lsmio-bench regenerates the LSMIO paper's evaluation figures on
// the simulated Viking cluster and evaluates the paper's headline ratios
// against tolerance bands.
//
// Usage:
//
//	lsmio-bench [-fig all|1|5..10|ext-nvme|ext-burst|ext-degraded|ext-compaction|ext-restore|ext-service|ext-pipeline|ext-stability] [-scale paper|quick] [-csv dir] [-json dir] [-q]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"lsmio/internal/bench"
	"lsmio/internal/histdata"
)

func main() {
	figFlag := flag.String("fig", "all", "figure to run: all, 1, 5..10, ext-nvme, ext-burst, ext-degraded, ext-compaction, ext-restore, ext-service, ext-pipeline, ext-stability")
	scaleFlag := flag.String("scale", "paper", "sweep scale: paper (1..48 nodes) or quick")
	csvDir := flag.String("csv", "", "directory to write per-figure CSV files")
	jsonDir := flag.String("json", "", "directory to write per-figure BENCH_<fig>.json files")
	quiet := flag.Bool("q", false, "suppress per-point progress lines")
	flag.Parse()

	var scale bench.Scale
	switch *scaleFlag {
	case "paper":
		scale = bench.PaperScale()
	case "quick":
		scale = bench.QuickScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	wantFig := func(id string) bool {
		if *figFlag == "all" {
			return true
		}
		return "fig"+*figFlag == id || *figFlag == id
	}

	if *figFlag == "all" || *figFlag == "1" || *figFlag == "fig1" {
		fmt.Println("== fig1: compute vs I/O growth of the #1 system ==")
		fmt.Println(histdata.Table())
	}

	progress := func(line string) {
		if !*quiet {
			fmt.Println("  " + line)
		}
	}

	failed := 0
	for _, fig := range bench.Figures() {
		if !wantFig(fig.ID) {
			continue
		}
		fr, err := bench.RunFigure(fig, scale, progress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", fig.ID, err)
			os.Exit(1)
		}
		fmt.Println(fr.Table())
		outcomes := fr.Evaluate()
		if len(outcomes) > 0 {
			fmt.Println("shape checks (paper value, accepted band, measured):")
			for _, o := range outcomes {
				status := "PASS"
				if o.Err != nil {
					status = "ERR "
					failed++
				} else if !o.Passed {
					status = "FAIL"
					failed++
				}
				band := fmt.Sprintf(">= %.2g", o.Min)
				if o.Max > 0 {
					band = fmt.Sprintf("%.2g..%.2g", o.Min, o.Max)
				}
				if o.Err != nil {
					fmt.Printf("  [%s] %-62s %v\n", status, o.Desc, o.Err)
				} else {
					fmt.Printf("  [%s] %-62s paper %.1fx band %s got %.2fx\n",
						status, o.Desc, o.Paper, band, o.Got)
				}
			}
			fmt.Println()
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, fig.ID+".csv")
			if err := os.WriteFile(path, []byte(fr.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
		if *jsonDir != "" {
			if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			blob, err := fr.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*jsonDir, "BENCH_"+fig.ID+".json")
			if err := os.WriteFile(path, blob, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	if failed > 0 {
		fmt.Printf("%d shape check(s) outside their band\n", failed)
		os.Exit(1)
	}
	if *figFlag == "all" || strings.HasPrefix(*figFlag, "fig") || *figFlag != "1" {
		fmt.Println("all requested figures completed")
	}
}
