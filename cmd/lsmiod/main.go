// Command lsmiod hosts the multi-tenant sharded checkpoint service
// (internal/svc): a pool of LSM-backed shards multiplexed between
// tenants with consistent-hash routing and fair-share admission.
//
//	lsmiod -sim -tenants 4 -noisy -assert-fair 2
//	    run a simulated session: tenants checkpoint over the fabric
//	    front beside a flooding noisy neighbor; -assert-fair R exits
//	    non-zero unless the behaved tenants' p99 commit latency stays
//	    within R times the solo baseline
//	lsmiod -dir /srv/ckpt -tenants 2
//	    host the service over a real directory (in-process transport),
//	    drive one short session per tenant and write SERVICE.json, so
//	    `lsmioctl tenants` / `lsmioctl stats` can inspect the layout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"lsmio/internal/core"
	"lsmio/internal/iosched"
	"lsmio/internal/lsm"
	"lsmio/internal/obs"
	"lsmio/internal/pfs"
	"lsmio/internal/sim"
	"lsmio/internal/svc"
	"lsmio/internal/vfs"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage: lsmiod (-sim | -dir <path>) [flags]

modes:
  -sim                run the service on the simulated cluster (fabric front)
  -dir <path>         host the service over a real directory (in-process)

workload:
  -tenants n          behaved tenants (default 4)
  -shards n           shard pool size (default 4)
  -steps n            checkpoint steps per tenant (default 3)
  -blocks n           puts per step (default 16)
  -block-bytes n      bytes per put (default 262144)
  -noisy              add a flooding tenant with no barrier discipline (sim)
  -fair               fair-share admission (default true)
  -iosched-bw n       shared I/O scheduler device budget in bytes/sec
                      (0 = scheduler off, the default): one iosched
                      instance paces WAL/flush/compaction across every
                      shard and scrub on the simulated cluster

reporting:
  -assert-fair r      exit 1 unless behaved p99 <= r x solo p99 (sim, needs -noisy)
  -json               emit the session report as JSON`)
	os.Exit(2)
}

// dutyFactor is compute time per step in solo-p99 units; it matches the
// ext-service bench so lsmiod sessions and the figure agree on load
// shape.
const dutyFactor = 12

type tenantReport struct {
	Name    string  `json:"name"`
	P99Ms   float64 `json:"p99_ms,omitempty"` // behaved tenants only
	Ops     int64   `json:"ops"`
	Bytes   int64   `json:"bytes"`
	Rejects int64   `json:"quota_rejects"`
}

type report struct {
	Mode          string            `json:"mode"`
	Shards        int               `json:"shards"`
	Tenants       int               `json:"tenants"`
	Noisy         bool              `json:"noisy"`
	Fair          bool              `json:"fair"`
	SoloP99Ms     float64           `json:"solo_p99_ms,omitempty"`
	P99Ms         float64           `json:"p99_ms"`
	AggBytesSec   float64           `json:"aggregate_bytes_per_sec"`
	Tenant        []tenantReport    `json:"tenant"`
	ShardRestarts int64             `json:"shard_restarts"`
	ShardHealth   []svc.ShardStatus `json:"shard_health,omitempty"`
}

type sessionResult struct {
	p99      time.Duration
	stalls   map[string]time.Duration // per-tenant worst step
	makespan time.Duration
	snap     obs.Snapshot
	health   []svc.ShardStatus // supervisor view at session end
}

func main() {
	simMode := flag.Bool("sim", false, "run on the simulated cluster")
	dir := flag.String("dir", "", "host the service over a real directory")
	tenants := flag.Int("tenants", 4, "behaved tenants")
	shards := flag.Int("shards", 4, "shard pool size")
	steps := flag.Int("steps", 3, "checkpoint steps per tenant")
	blocks := flag.Int("blocks", 16, "puts per step")
	blockBytes := flag.Int64("block-bytes", 256<<10, "bytes per put")
	noisy := flag.Bool("noisy", false, "add a flooding tenant (sim mode)")
	fair := flag.Bool("fair", true, "fair-share admission")
	ioBW := flag.Float64("iosched-bw", 0, "shared I/O scheduler budget, bytes/sec (0 = off)")
	assertFair := flag.Float64("assert-fair", 0, "exit 1 unless behaved p99 <= r x solo p99")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	flag.Usage = usage
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "lsmiod:", err)
		os.Exit(1)
	}
	if (*simMode == (*dir != "")) || *tenants < 1 || *shards < 1 {
		usage()
	}

	var rep report
	var solo time.Duration
	var res sessionResult
	if *simMode {
		// Solo probe calibrates the load shape and the fairness
		// baseline: one tenant, no neighbor, no admission limits.
		probe, err := runSim(*shards, 1, *steps, *blocks, *blockBytes, false, svc.AdmissionConfig{}, 0, 0, *ioBW)
		if err != nil {
			die(err)
		}
		solo = probe.p99
		stepBytes := int64(*blocks) * *blockBytes
		compute := dutyFactor * solo
		demand := float64(stepBytes) / (compute + solo).Seconds()
		capacity := 2 * demand * float64(*tenants+1)
		adm := svc.AdmissionConfig{Disabled: !*fair, CapacityBytesPerSec: capacity, MaxWait: solo / 4}
		res, err = runSim(*shards, *tenants, *steps, *blocks, *blockBytes, *noisy, adm, compute, capacity, *ioBW)
		if err != nil {
			die(err)
		}
		rep.Mode = "sim"
	} else {
		var err error
		res, err = runDir(*dir, *shards, *tenants, *steps, *blocks, *blockBytes, *fair, *ioBW)
		if err != nil {
			die(err)
		}
		rep.Mode = "dir"
	}

	rep.Shards, rep.Tenants, rep.Noisy, rep.Fair = *shards, *tenants, *noisy, *fair
	rep.SoloP99Ms = float64(solo) / 1e6
	rep.P99Ms = float64(res.p99) / 1e6
	total := float64(*tenants) * float64(*steps) * float64(*blocks) * float64(*blockBytes)
	rep.AggBytesSec = total / res.makespan.Seconds()
	names := make([]string, 0, len(res.stalls))
	for n := range res.stalls {
		names = append(names, n)
	}
	sort.Strings(names)
	if *noisy {
		names = append(names, "noisy")
	}
	for _, n := range names {
		tr := tenantReport{
			Name:    n,
			Ops:     res.snap.Counters["svc.tenant."+n+".ops"],
			Bytes:   res.snap.Counters["svc.tenant."+n+".bytes_in"],
			Rejects: res.snap.Counters["svc.tenant."+n+".quota_rejects"],
		}
		if st, ok := res.stalls[n]; ok {
			tr.P99Ms = float64(st) / 1e6
		}
		rep.Tenant = append(rep.Tenant, tr)
	}
	rep.ShardRestarts = res.snap.Counters["svc.supervisor.restarts"]
	rep.ShardHealth = res.health

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			die(err)
		}
	} else {
		fmt.Printf("lsmiod: %s service, %d shard(s), %d tenant(s)%s, fair-share %v\n",
			rep.Mode, rep.Shards, rep.Tenants, map[bool]string{true: " + noisy", false: ""}[rep.Noisy], rep.Fair)
		if solo > 0 {
			fmt.Printf("  solo p99 %v\n", solo.Round(time.Microsecond))
		}
		fmt.Printf("  %-12s %12s %8s %12s %8s\n", "tenant", "worst step", "ops", "bytes", "rejects")
		for _, tr := range rep.Tenant {
			stall := "-"
			if tr.P99Ms > 0 {
				stall = fmt.Sprintf("%.3fms", tr.P99Ms)
			}
			fmt.Printf("  %-12s %12s %8d %12d %8d\n", tr.Name, stall, tr.Ops, tr.Bytes, tr.Rejects)
		}
		fmt.Printf("  behaved p99 %v, aggregate %.1f MB/s\n", res.p99.Round(time.Microsecond), rep.AggBytesSec/1e6)
		if rep.ShardRestarts > 0 {
			fmt.Printf("  supervisor: %d shard restart(s)\n", rep.ShardRestarts)
			for _, sh := range rep.ShardHealth {
				if sh.Restarts > 0 || sh.State != "up" {
					fmt.Printf("    shard %03d: %s, %d restart(s), breaker %s\n", sh.Shard, sh.State, sh.Restarts, sh.Breaker)
				}
			}
		} else if len(rep.ShardHealth) > 0 {
			fmt.Printf("  supervisor: all %d shard(s) up, no restarts\n", len(rep.ShardHealth))
		}
	}

	if *assertFair > 0 {
		if !*simMode || !*noisy || !*fair {
			die(fmt.Errorf("-assert-fair needs -sim -noisy -fair"))
		}
		bound := time.Duration(*assertFair * float64(solo))
		if res.p99 > bound {
			die(fmt.Errorf("fair-share bound violated: behaved p99 %v > %.1f x solo %v",
				res.p99.Round(time.Microsecond), *assertFair, solo.Round(time.Microsecond)))
		}
		fmt.Printf("fair-share OK: behaved p99 %v <= %.1f x solo %v\n",
			res.p99.Round(time.Microsecond), *assertFair, solo.Round(time.Microsecond))
	}
}

// runSim executes one simulated session: behaved tenants checkpoint
// over the fabric front on a staggered compute/commit cadence; a noisy
// tenant, when present, offers un-barriered puts at the full advertised
// capacity until the behaved tenants finish.
func runSim(shards, tenants, steps, blocks int, blockBytes int64, noisy bool, adm svc.AdmissionConfig, compute time.Duration, noisyRate float64, ioBW float64) (sessionResult, error) {
	k := sim.NewKernel()
	clients := tenants + 1
	cluster := pfs.NewCluster(k, pfs.VikingConfig(clients+shards))
	reg := obs.NewRegistry()
	reg.SetClock(func() time.Duration { return k.Now().Duration() })

	// One scheduler instance covers every shard's engine I/O and the
	// cluster's scrubber; disabled (nil-equivalent) when ioBW is 0 so the
	// calibrated fairness gate is measured on the unscheduled baseline.
	var sched *iosched.Scheduler
	if ioBW > 0 {
		sched = iosched.New(iosched.Config{BytesPerSec: ioBW, Kernel: k, Obs: reg})
		cluster.SetIOScheduler(sched)
	}

	var s *svc.Service
	var front *svc.Front
	var setupErr error
	k.Spawn("setup", func(p *sim.Proc) {
		s, setupErr = svc.New(svc.Options{
			Shards: shards,
			OpenShard: func(i int) (*core.Manager, error) {
				return core.NewManager(svc.ShardDirName(i), core.ManagerOptions{
					Store: core.StoreOptions{
						FS:              cluster.Client(clients + i),
						Platform:        lsm.SimPlatform(k),
						Async:           true,
						WriteBufferSize: 1 << 20,
						IOSched:         sched,
					},
					Kernel: k,
					Obs:    reg,
				})
			},
			Kernel:    k,
			Obs:       reg,
			Admission: adm,
			IOSched:   sched,
		})
		if setupErr != nil {
			return
		}
		nodes := make([]int, shards)
		for i := range nodes {
			nodes[i] = clients + i
		}
		front = svc.NewFront(s, cluster.Fabric(), nodes)
		cfg := svc.TenantConfig{Weight: 1, BurstBytes: float64(int64(blocks) * blockBytes)}
		for t := 0; t < tenants; t++ {
			if _, err := s.RegisterTenant(fmt.Sprintf("tenant%02d", t), cfg); err != nil {
				setupErr = err
				return
			}
		}
		if noisy {
			if _, err := s.RegisterTenant("noisy", cfg); err != nil {
				setupErr = err
			}
		}
	})
	if err := k.Run(); err != nil {
		return sessionResult{}, err
	}
	if setupErr != nil {
		return sessionResult{}, setupErr
	}

	res := sessionResult{stalls: make(map[string]time.Duration)}
	block := make([]byte, blockBytes)
	errs := make([]error, tenants+1)
	remaining := tenants
	for t := 0; t < tenants; t++ {
		t := t
		name := fmt.Sprintf("tenant%02d", t)
		k.Spawn(name, func(p *sim.Proc) {
			defer func() { remaining-- }()
			c := front.Connect(name, t)
			if off := compute * time.Duration(t) / time.Duration(tenants); off > 0 {
				p.Sleep(off)
			}
			for step := 0; step < steps; step++ {
				if compute > 0 {
					p.Sleep(compute)
				}
				start := p.Now()
				for b := 0; b < blocks; b++ {
					if err := c.Put(fmt.Sprintf("step%03d/block%03d", step, b), block); err != nil {
						errs[t] = err
						return
					}
				}
				if err := c.Barrier(); err != nil {
					errs[t] = err
					return
				}
				if d := p.Now().Sub(start); d > res.stalls[name] {
					res.stalls[name] = d
				}
			}
			if end := p.Now().Duration(); end > res.makespan {
				res.makespan = end
			}
		})
	}
	if noisy {
		gap := time.Duration(float64(blockBytes) / noisyRate * float64(time.Second))
		k.Spawn("noisy", func(p *sim.Proc) {
			c := front.Connect("noisy", tenants)
			for sent := int64(0); remaining > 0; {
				err := c.Put(fmt.Sprintf("junk%08d", sent), block)
				if err != nil {
					if qe, ok := err.(*svc.QuotaError); ok {
						p.Sleep(qe.RetryAfter)
						continue
					}
					errs[tenants] = err
					return
				}
				sent += blockBytes
				p.Sleep(gap)
			}
		})
	}
	if err := k.Run(); err != nil {
		return sessionResult{}, err
	}
	for _, err := range errs {
		if err != nil {
			return sessionResult{}, err
		}
	}
	for _, d := range res.stalls {
		if d > res.p99 {
			res.p99 = d
		}
	}
	res.health = s.ShardStatuses()
	res.snap = cluster.Obs().Snapshot().Merge(reg.Snapshot())
	return res, nil
}

// runDir hosts the service over a real directory and drives one short
// session per tenant through the in-process transport. The layout —
// shard-NNN stores plus SERVICE.json — is what lsmioctl's service mode
// inspects.
func runDir(dir string, shards, tenants, steps, blocks int, blockBytes int64, fair bool, ioBW float64) (sessionResult, error) {
	fs, err := vfs.NewOSFS(dir)
	if err != nil {
		return sessionResult{}, err
	}
	reg := obs.NewRegistry()
	var sched *iosched.Scheduler
	if ioBW > 0 {
		// Wall-clock mode: every shard's engine paces against the same
		// real-time budget.
		sched = iosched.New(iosched.Config{BytesPerSec: ioBW, Obs: reg})
	}
	s, err := svc.New(svc.Options{
		Shards: shards,
		OpenShard: func(i int) (*core.Manager, error) {
			return core.NewManager(svc.ShardDirName(i), core.ManagerOptions{
				Store: core.StoreOptions{FS: fs, Async: true, IOSched: sched},
				Obs:   reg,
			})
		},
		Obs:        reg,
		Admission:  svc.AdmissionConfig{Disabled: !fair},
		ManifestFS: fs,
		IOSched:    sched,
	})
	if err != nil {
		return sessionResult{}, err
	}
	res := sessionResult{stalls: make(map[string]time.Duration)}
	block := make([]byte, blockBytes)
	errs := make([]error, tenants)
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < tenants; t++ {
		name := fmt.Sprintf("tenant%02d", t)
		tn, err := s.RegisterTenant(name, svc.TenantConfig{Weight: 1})
		if err != nil {
			return sessionResult{}, err
		}
		wg.Add(1)
		t := t
		go func() {
			defer wg.Done()
			for step := 0; step < steps; step++ {
				stepStart := time.Now()
				for b := 0; b < blocks; b++ {
					if err := tn.Put(fmt.Sprintf("step%03d/block%03d", step, b), block); err != nil {
						errs[t] = err
						return
					}
				}
				if err := tn.Barrier(); err != nil {
					errs[t] = err
					return
				}
				mu.Lock()
				if d := time.Since(stepStart); d > res.stalls[name] {
					res.stalls[name] = d
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	res.makespan = time.Since(start)
	for _, err := range errs {
		if err != nil {
			return sessionResult{}, err
		}
	}
	for _, d := range res.stalls {
		if d > res.p99 {
			res.p99 = d
		}
	}
	res.health = s.ShardStatuses()
	if err := s.Close(); err != nil {
		return sessionResult{}, err
	}
	res.snap = reg.Snapshot()
	return res, nil
}
