// Command iorsim runs a single IOR-style experiment on the simulated
// Viking cluster with full control over the benchmark knobs — the
// free-form companion to lsmio-bench's fixed figure sweeps.
//
//	iorsim -api lsmio -n 48 -t 64k -b 64k -s 512 -stripes 4
//	iorsim -api posix -n 16 -t 1m -s 32 -collective -read -verify
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"lsmio/internal/core"
	"lsmio/internal/ior"
	"lsmio/internal/pfs"
	"lsmio/internal/sim"
)

// parseSize accepts 64k / 1m / 4096 style sizes.
func parseSize(s string) (int64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "k"):
		mult, s = 1<<10, strings.TrimSuffix(s, "k")
	case strings.HasSuffix(s, "m"):
		mult, s = 1<<20, strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "g"):
		mult, s = 1<<30, strings.TrimSuffix(s, "g")
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return v * mult, nil
}

func main() {
	api := flag.String("api", "posix", "I/O API: posix, hdf5, adios2, lsmio, lsmio-plugin")
	nodes := flag.Int("n", 8, "number of compute nodes (1 task per node)")
	transfer := flag.String("t", "64k", "transfer size")
	block := flag.String("b", "", "block size (default: = transfer)")
	segments := flag.Int("s", 64, "segment count")
	stripeCount := flag.Int("stripes", 4, "Lustre stripe count")
	stripeSize := flag.String("stripesize", "", "Lustre stripe size (default: = transfer)")
	collective := flag.Bool("collective", false, "use collective (two-phase) I/O")
	fpp := flag.Bool("F", false, "file per process instead of shared file")
	doRead := flag.Bool("read", false, "add a read-back phase")
	verify := flag.Bool("verify", false, "verify data on read-back")
	buffer := flag.String("buffer", "8m", "LSMIO write buffer / ADIOS2 BufferChunkSize")
	backend := flag.String("backend", "", "LSMIO backend: rocks (default) or level")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "iorsim:", err)
		os.Exit(1)
	}
	tSize, err := parseSize(*transfer)
	if err != nil {
		die(err)
	}
	bSize := tSize
	if *block != "" {
		if bSize, err = parseSize(*block); err != nil {
			die(err)
		}
	}
	sSize := tSize
	if *stripeSize != "" {
		if sSize, err = parseSize(*stripeSize); err != nil {
			die(err)
		}
	}
	bufSize, err := parseSize(*buffer)
	if err != nil {
		die(err)
	}

	p := ior.Params{
		API:             ior.API(*api),
		TransferSize:    tSize,
		BlockSize:       bSize,
		SegmentCount:    *segments,
		FilePerProc:     *fpp,
		Collective:      *collective,
		StripeCount:     *stripeCount,
		StripeSize:      sSize,
		DoWrite:         true,
		DoRead:          *doRead,
		Verify:          *verify,
		Fsync:           true,
		TestFile:        "testfile",
		WriteBufferSize: int(bufSize),
	}
	switch *backend {
	case "":
	case "rocks", "level":
		p.LSMIOBackend = core.Backend(*backend)
	default:
		die(fmt.Errorf("unknown backend %q", *backend))
	}

	cluster := pfs.NewCluster(sim.NewKernel(), pfs.VikingConfig(*nodes))
	res, err := ior.Run(cluster, *nodes, p)
	if err != nil {
		die(err)
	}

	fmt.Printf("api=%s nodes=%d transfer=%d block=%d segments=%d stripes=%d collective=%v fpp=%v\n",
		*api, *nodes, tSize, bSize, *segments, *stripeCount, *collective, *fpp)
	fmt.Printf("per-rank volume: %d MiB, aggregate: %d MiB\n",
		res.BytesPerRank>>20, res.TotalBytes>>20)
	fmt.Printf("write: %9.1f MB/s  (%.3fs)\n", res.WriteBW/1e6, res.WriteSeconds)
	if *doRead {
		fmt.Printf("read:  %9.1f MB/s  (%.3fs)\n", res.ReadBW/1e6, res.ReadSeconds)
	}
	s := res.Storage
	fmt.Printf("storage: %d write RPCs, %d read RPCs, %d seeks, %d lock migrations, %d metadata ops\n",
		s.WriteOps, s.ReadOps, s.Seeks, s.LockSwitches, s.MetadataOps)
}
