package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"lsmio"
	"lsmio/internal/svc"
	"lsmio/internal/vfs"
)

// statsCmd implements `lsmioctl stats [-json] [-interval d [-count n]]`.
// The default is one aligned text table over every instrument in the
// store's unified registry; -json emits the same snapshot as a nested
// object (histograms as count/mean/quantile summaries); -interval keeps
// the manager open and prints the delta between consecutive snapshots
// every period, which is how an operator watches a live store that
// another process is not holding locked.
func statsCmd(fsys lsmio.FS, args []string) {
	fset := flag.NewFlagSet("stats", flag.ExitOnError)
	asJSON := fset.Bool("json", false, "emit the snapshot as JSON")
	interval := fset.Duration("interval", 0, "watch mode: print deltas every interval")
	count := fset.Int("count", 0, "watch mode: stop after N reports (0 = forever)")
	fset.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: lsmioctl -dir <store> stats [-json] [-interval <dur> [-count <n>]]")
		fset.PrintDefaults()
		os.Exit(2)
	}
	fset.Parse(args)

	// A directory holding a SERVICE.json is a multi-tenant service
	// layout (written by lsmiod): aggregate across its shard stores
	// instead of opening a single one.
	if m, err := svc.ReadManifest(fsys); err == nil {
		serviceStats(fsys, m, *asJSON)
		return
	} else if !errors.Is(err, vfs.ErrNotExist) {
		fmt.Fprintln(os.Stderr, "lsmioctl:", err)
		os.Exit(1)
	}

	mgr, err := lsmio.NewManager("store", lsmio.ManagerOptions{
		Store: lsmio.StoreOptions{FS: fsys},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsmioctl:", err)
		os.Exit(1)
	}
	defer func() {
		if err := mgr.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "lsmioctl:", err)
			os.Exit(1)
		}
	}()

	emit := func(snap lsmio.MetricsSnapshot) {
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(snap.Tree()); err != nil {
				fmt.Fprintln(os.Stderr, "lsmioctl:", err)
				os.Exit(1)
			}
			return
		}
		if err := snap.WriteTable(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "lsmioctl:", err)
			os.Exit(1)
		}
	}

	prev := mgr.Obs().Snapshot()
	emit(prev)
	if *interval <= 0 {
		return
	}
	for n := 1; *count == 0 || n < *count; n++ {
		time.Sleep(*interval)
		cur := mgr.Obs().Snapshot()
		delta := cur.Delta(prev)
		prev = cur
		fmt.Printf("--- delta @ %v ---\n", cur.At)
		emit(delta)
	}
}

// serviceStats opens every shard store named by the manifest, merges
// their snapshots (counters add, histograms merge bucket-wise) with the
// service-level registry persisted in each, and prints one aggregate
// view: what an operator reads to see the whole service's counters and
// per-tenant admission stats in one place.
func serviceStats(fsys lsmio.FS, m svc.Manifest, asJSON bool) {
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "lsmioctl:", err)
		os.Exit(1)
	}
	var agg lsmio.MetricsSnapshot
	for i := 0; i < m.Shards; i++ {
		mgr, err := lsmio.NewManager(svc.ShardDirName(i), lsmio.ManagerOptions{
			Store: lsmio.StoreOptions{FS: fsys},
		})
		if err != nil {
			die(fmt.Errorf("shard %d: %w", i, err))
		}
		snap := mgr.Obs().Snapshot()
		if err := mgr.Close(); err != nil {
			die(fmt.Errorf("shard %d: %w", i, err))
		}
		if i == 0 {
			agg = snap
		} else {
			agg = agg.Merge(snap)
		}
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]interface{}{
			"service": m,
			"metrics": agg.Tree(),
		}); err != nil {
			die(err)
		}
		return
	}
	fmt.Printf("service: %d shard(s), epoch %d, %d tenant(s); aggregate across shards:\n",
		m.Shards, m.Epoch, len(m.Tenants))
	if err := agg.WriteTable(os.Stdout); err != nil {
		die(err)
	}
}
