package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"lsmio"
	"lsmio/internal/svc"
	"lsmio/internal/vfs"
)

// statsCmd implements `lsmioctl stats [-json] [-interval d [-count n]]`.
// The default is one aligned text table over every instrument in the
// store's unified registry; -json emits the same snapshot as a nested
// object (histograms as count/mean/quantile summaries); -interval keeps
// the manager open and prints the delta between consecutive snapshots
// every period, which is how an operator watches a live store that
// another process is not holding locked.
func statsCmd(fsys lsmio.FS, args []string) {
	fset := flag.NewFlagSet("stats", flag.ExitOnError)
	asJSON := fset.Bool("json", false, "emit the snapshot as JSON")
	interval := fset.Duration("interval", 0, "watch mode: print deltas every interval")
	count := fset.Int("count", 0, "watch mode: stop after N reports (0 = forever)")
	fset.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: lsmioctl -dir <store> stats [-json] [-interval <dur> [-count <n>]]")
		fset.PrintDefaults()
		os.Exit(2)
	}
	fset.Parse(args)

	// A directory holding a SERVICE.json is a multi-tenant service
	// layout (written by lsmiod): aggregate across its shard stores
	// instead of opening a single one.
	if m, err := svc.ReadManifest(fsys); err == nil {
		serviceStats(fsys, m, *asJSON)
		return
	} else if !errors.Is(err, vfs.ErrNotExist) {
		fmt.Fprintln(os.Stderr, "lsmioctl:", err)
		os.Exit(1)
	}

	mgr, err := lsmio.NewManager("store", lsmio.ManagerOptions{
		Store: lsmio.StoreOptions{FS: fsys},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsmioctl:", err)
		os.Exit(1)
	}
	defer func() {
		if err := mgr.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "lsmioctl:", err)
			os.Exit(1)
		}
	}()

	emit := func(snap lsmio.MetricsSnapshot) {
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(snap.Tree()); err != nil {
				fmt.Fprintln(os.Stderr, "lsmioctl:", err)
				os.Exit(1)
			}
			return
		}
		if err := snap.WriteTable(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "lsmioctl:", err)
			os.Exit(1)
		}
		writeIOSchedSection(os.Stdout, snap)
	}

	prev := mgr.Obs().Snapshot()
	emit(prev)
	if *interval <= 0 {
		return
	}
	for n := 1; *count == 0 || n < *count; n++ {
		time.Sleep(*interval)
		cur := mgr.Obs().Snapshot()
		delta := cur.Delta(prev)
		prev = cur
		fmt.Printf("--- delta @ %v ---\n", cur.At)
		emit(delta)
	}
}

// serviceStats opens every shard store named by the manifest, merges
// their snapshots (counters add, histograms merge bucket-wise) with the
// service-level registry persisted in each, and prints one aggregate
// view: what an operator reads to see the whole service's counters and
// per-tenant admission stats in one place.
func serviceStats(fsys lsmio.FS, m svc.Manifest, asJSON bool) {
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "lsmioctl:", err)
		os.Exit(1)
	}
	var agg lsmio.MetricsSnapshot
	for i := 0; i < m.Shards; i++ {
		mgr, err := lsmio.NewManager(svc.ShardDirName(i), lsmio.ManagerOptions{
			Store: lsmio.StoreOptions{FS: fsys},
		})
		if err != nil {
			die(fmt.Errorf("shard %d: %w", i, err))
		}
		snap := mgr.Obs().Snapshot()
		if err := mgr.Close(); err != nil {
			die(fmt.Errorf("shard %d: %w", i, err))
		}
		if i == 0 {
			agg = snap
		} else {
			agg = agg.Merge(snap)
		}
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]interface{}{
			"service": m,
			"metrics": agg.Tree(),
		}); err != nil {
			die(err)
		}
		return
	}
	fmt.Printf("service: %d shard(s), epoch %d, %d tenant(s); aggregate across shards:\n",
		m.Shards, m.Epoch, len(m.Tenants))
	if err := agg.WriteTable(os.Stdout); err != nil {
		die(err)
	}
	writeIOSchedSection(os.Stdout, agg)
}

// writeIOSchedSection renders the shared I/O scheduler's per-class
// accounting as an operator-oriented summary below the raw instrument
// table: one row per priority class with grant counts, granted bytes,
// cumulative token wait and the live deficit backlog, plus the device
// budget and how much of it was actually bought. Printed only when the
// snapshot carries `iosched.*` instruments (a deployment with the
// scheduler attached); silent otherwise.
func writeIOSchedSection(w io.Writer, snap lsmio.MetricsSnapshot) {
	rate := snap.Gauges["iosched.device.rate_bytes_per_sec"]
	busy := snap.Counters["iosched.device.busy_nanos"]
	classes := []string{"foreground", "flush", "drain", "compaction", "scrub"}
	attached := rate != 0 || busy != 0
	for _, c := range classes {
		if snap.Counters["iosched."+c+".grants"] != 0 {
			attached = true
		}
	}
	if !attached {
		return
	}
	fmt.Fprintf(w, "\niosched: device budget %.1f MB/s, %v of device time bought\n",
		float64(rate)/1e6, time.Duration(busy).Round(time.Millisecond))
	fmt.Fprintf(w, "  %-12s %10s %14s %14s %12s\n", "class", "grants", "bytes", "wait", "deficit")
	for _, c := range classes {
		fmt.Fprintf(w, "  %-12s %10d %14d %14s %12d\n", c,
			snap.Counters["iosched."+c+".grants"],
			snap.Counters["iosched."+c+".granted_bytes"],
			time.Duration(snap.Counters["iosched."+c+".wait_nanos"]).Round(time.Microsecond),
			snap.Gauges["iosched."+c+".deficit_bytes"])
	}
}
