package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"lsmio"
)

// statsCmd implements `lsmioctl stats [-json] [-interval d [-count n]]`.
// The default is one aligned text table over every instrument in the
// store's unified registry; -json emits the same snapshot as a nested
// object (histograms as count/mean/quantile summaries); -interval keeps
// the manager open and prints the delta between consecutive snapshots
// every period, which is how an operator watches a live store that
// another process is not holding locked.
func statsCmd(fs lsmio.FS, args []string) {
	fset := flag.NewFlagSet("stats", flag.ExitOnError)
	asJSON := fset.Bool("json", false, "emit the snapshot as JSON")
	interval := fset.Duration("interval", 0, "watch mode: print deltas every interval")
	count := fset.Int("count", 0, "watch mode: stop after N reports (0 = forever)")
	fset.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: lsmioctl -dir <store> stats [-json] [-interval <dur> [-count <n>]]")
		fset.PrintDefaults()
		os.Exit(2)
	}
	fset.Parse(args)

	mgr, err := lsmio.NewManager("store", lsmio.ManagerOptions{
		Store: lsmio.StoreOptions{FS: fs},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsmioctl:", err)
		os.Exit(1)
	}
	defer func() {
		if err := mgr.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "lsmioctl:", err)
			os.Exit(1)
		}
	}()

	emit := func(snap lsmio.MetricsSnapshot) {
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(snap.Tree()); err != nil {
				fmt.Fprintln(os.Stderr, "lsmioctl:", err)
				os.Exit(1)
			}
			return
		}
		if err := snap.WriteTable(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "lsmioctl:", err)
			os.Exit(1)
		}
	}

	prev := mgr.Obs().Snapshot()
	emit(prev)
	if *interval <= 0 {
		return
	}
	for n := 1; *count == 0 || n < *count; n++ {
		time.Sleep(*interval)
		cur := mgr.Obs().Snapshot()
		delta := cur.Delta(prev)
		prev = cur
		fmt.Printf("--- delta @ %v ---\n", cur.At)
		emit(delta)
	}
}
