package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"lsmio"
	"lsmio/ckpt"
)

// restoreCmd implements `lsmioctl restore [-verify] [-json] [-parallel n]
// [prefix]`: restore the newest fully-verified checkpoint through the
// self-healing pipeline. Damaged steps are quarantined and skipped, the
// journal makes an interrupted invocation resumable, and the exit code
// tells scripts whether a usable checkpoint exists. The restored state
// itself is not written anywhere — the command is the operator's dry-run
// of exactly what an application's RestoreLatest would load.
func restoreCmd(fs lsmio.FS, args []string) {
	fset := flag.NewFlagSet("restore", flag.ExitOnError)
	verify := fset.Bool("verify", false, "re-verify the restored step end-to-end afterwards")
	asJSON := fset.Bool("json", false, "emit the restore report as JSON")
	parallel := fset.Int("parallel", 4, "worker-pool width for per-variable reads")
	fset.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: lsmioctl -dir <store> restore [-verify] [-json] [-parallel <n>] [prefix]")
		fset.PrintDefaults()
		os.Exit(2)
	}
	fset.Parse(args)

	mgr, err := lsmio.NewManager("store", lsmio.ManagerOptions{
		Store: lsmio.StoreOptions{FS: fs},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsmioctl:", err)
		os.Exit(1)
	}
	die := func(err error) {
		mgr.Close()
		fmt.Fprintln(os.Stderr, "lsmioctl:", err)
		os.Exit(1)
	}
	store := ckpt.New(mgr, ckpt.Options{Prefix: fset.Arg(0)})
	step, state, rep, err := store.Restore(ckpt.RestoreOptions{
		Parallel: *parallel,
		Journal:  true,
	})
	if errors.Is(err, ckpt.ErrNoCheckpoint) {
		fmt.Fprintln(os.Stderr, "lsmioctl: no restorable checkpoint")
		mgr.Close()
		os.Exit(1)
	}
	if err != nil {
		die(err)
	}
	if *verify {
		if err := store.Verify(step); err != nil {
			die(fmt.Errorf("post-restore verify of step %d: %w", step, err))
		}
	}
	if *asJSON {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			die(err)
		}
		fmt.Println(string(out))
	} else {
		fmt.Printf("restored step %d: %d variable(s), %d byte(s) read", step, rep.Vars, rep.BytesRead)
		if rep.DeltaVars > 0 {
			fmt.Printf(", %d reused from local snapshot", rep.DeltaVars)
		}
		if rep.Resumed {
			fmt.Print(", resumed from journal")
		}
		fmt.Printf(" in %v\n", rep.Elapsed)
		for _, q := range rep.Quarantined {
			fmt.Printf("  quarantined step %d on the way\n", q)
		}
		var total int64
		for _, data := range state {
			total += int64(len(data))
		}
		fmt.Printf("  state: %d variable(s), %d byte(s)\n", len(state), total)
		if *verify {
			fmt.Printf("  step %d re-verified end-to-end\n", step)
		}
	}
	if err := mgr.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "lsmioctl:", err)
		os.Exit(1)
	}
}
