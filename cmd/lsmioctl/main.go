// Command lsmioctl inspects and manipulates an on-disk LSMIO store — the
// operator's tool for real (non-simulated) stores on the local
// filesystem.
//
//	lsmioctl -dir /ckpt/store put run/step 42
//	lsmioctl -dir /ckpt/store get run/step
//	lsmioctl -dir /ckpt/store scan [prefix]
//	lsmioctl -dir /ckpt/store del run/step
//	lsmioctl -dir /ckpt/store stats
//	lsmioctl -dir /ckpt/store compact
//	lsmioctl -dir /ckpt/store scrub
package main

import (
	"flag"
	"fmt"
	"os"
	"unicode"

	"lsmio"
	"lsmio/ckpt"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage: lsmioctl -dir <store> <command> [args]

commands:
  put <key> <value>   write a key
  get <key>           print a key's value
  del <key>           delete a key
  scan [prefix]       list keys (and printable values) in order
  rscan [prefix]      list keys in reverse order
  stats               Manager counters and engine statistics; on a service
                      directory (SERVICE.json), the aggregate across all shards
  tenants             shard layout and tenant quota table of a service directory
  compact             flush and fully compact the store
  verify              check every table's checksums and key ordering
  property <name>     print an engine property (lsmio.last-sequence, ...)
  repair              rebuild CURRENT/MANIFEST from surviving tables and logs
  scrub [prefix]      verify every checkpoint step (default prefix "ckpt"),
                      quarantining damaged steps and unquarantining repaired ones
  restore [-verify] [-json] [-parallel n] [prefix]
                      restore the newest fully-verified checkpoint through the
                      self-healing pipeline (journaled, damaged steps are
                      quarantined and skipped); -verify re-verifies the restored
                      step end-to-end afterwards, -json prints the restore
                      report as JSON`)
	os.Exit(2)
}

func printable(b []byte) string {
	if len(b) > 64 {
		return fmt.Sprintf("<%d bytes>", len(b))
	}
	for _, r := range string(b) {
		if !unicode.IsPrint(r) {
			return fmt.Sprintf("<%d bytes>", len(b))
		}
	}
	return string(b)
}

func main() {
	dir := flag.String("dir", "", "store directory (parent of the DB)")
	flag.Usage = usage
	flag.Parse()
	if *dir == "" || flag.NArg() < 1 {
		usage()
	}
	fs, err := lsmio.NewOSFS(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsmioctl:", err)
		os.Exit(1)
	}
	opts := lsmio.CheckpointEngineOptions(fs)
	// Repair runs before (instead of) opening: it exists for stores whose
	// metadata cannot be opened.
	if flag.Arg(0) == "repair" {
		sum, err := lsmio.RepairDB("store", opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lsmioctl:", err)
			os.Exit(1)
		}
		fmt.Printf("recovered %d table(s) with %d entries, %d WAL record(s); skipped %d\n",
			sum.TablesRecovered, sum.EntriesRecovered, sum.LogRecordsRecovered, sum.TablesSkipped)
		for _, p := range sum.Problems {
			fmt.Println("  problem:", p)
		}
		return
	}
	// Stats goes through the Manager — the operator view matches what an
	// application linked against the library would see: the unified obs
	// registry covering the `core.*` session counters and the engine's
	// cumulative `lsm.*` statistics in one hierarchical snapshot.
	if flag.Arg(0) == "stats" {
		statsCmd(fs, flag.Args()[1:])
		return
	}
	// Tenants reads the multi-tenant service manifest (SERVICE.json) in a
	// directory hosted by lsmiod: shard layout plus the tenant quota
	// table.
	if flag.Arg(0) == "tenants" {
		tenantsCmd(fs, flag.Args()[1:])
		return
	}
	// Scrub works at the checkpoint layer: every committed step is
	// verified end-to-end, damage is quarantined (restore skips it), and
	// steps that verify again after a repair are unquarantined.
	if flag.Arg(0) == "scrub" {
		mgr, err := lsmio.NewManager("store", lsmio.ManagerOptions{
			Store: lsmio.StoreOptions{FS: fs},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "lsmioctl:", err)
			os.Exit(1)
		}
		store := ckpt.New(mgr, ckpt.Options{Prefix: flag.Arg(1)})
		rep, err := store.Scrub()
		if err != nil {
			fmt.Fprintln(os.Stderr, "lsmioctl:", err)
			os.Exit(1)
		}
		fmt.Printf("scrubbed %d step(s): %d verified, %d repaired, %d unrecoverable\n",
			rep.Steps, rep.Verified, rep.Repaired, rep.Unrecoverable)
		if q, err := store.Quarantined(); err == nil {
			for step, reason := range q {
				fmt.Printf("  quarantined step %d: %s\n", step, reason)
			}
		}
		if err := mgr.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "lsmioctl:", err)
			os.Exit(1)
		}
		if rep.Unrecoverable > 0 {
			os.Exit(1)
		}
		return
	}
	// Restore runs the self-healing restore pipeline: parallel verified
	// reads, quarantine-and-fallback past damaged steps, and a journal so
	// an interrupted invocation resumes where it left off.
	if flag.Arg(0) == "restore" {
		restoreCmd(fs, flag.Args()[1:])
		return
	}
	// Open the engine directly so scan/compact are available; the
	// store layout is exactly what the Manager produces.
	db, err := lsmio.OpenDB("store", opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsmioctl:", err)
		os.Exit(1)
	}
	defer db.Close()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "lsmioctl:", err)
		os.Exit(1)
	}

	switch cmd, args := flag.Arg(0), flag.Args()[1:]; cmd {
	case "put":
		if len(args) != 2 {
			usage()
		}
		if err := db.Put([]byte(args[0]), []byte(args[1])); err != nil {
			die(err)
		}
		if err := db.Flush(); err != nil {
			die(err)
		}
	case "get":
		if len(args) != 1 {
			usage()
		}
		v, err := db.Get([]byte(args[0]))
		if err != nil {
			die(err)
		}
		os.Stdout.Write(v)
		fmt.Println()
	case "del":
		if len(args) != 1 {
			usage()
		}
		if err := db.Delete([]byte(args[0])); err != nil {
			die(err)
		}
		if err := db.Flush(); err != nil {
			die(err)
		}
	case "scan", "rscan":
		var lower, upper []byte
		if len(args) > 0 && args[0] != "" {
			lower = []byte(args[0])
			upper = prefixSuccessor(lower)
		}
		it, err := db.NewRangeIterator(lower, upper)
		if err != nil {
			die(err)
		}
		defer it.Close()
		n := 0
		emit := func() {
			fmt.Printf("%-40s %s\n", it.Key(), printable(it.Value()))
			n++
		}
		if cmd == "scan" {
			for it.SeekToFirst(); it.Valid(); it.Next() {
				emit()
			}
		} else {
			for it.SeekToLast(); it.Valid(); it.Prev() {
				emit()
			}
		}
		fmt.Printf("(%d keys)\n", n)
	case "compact":
		if err := db.CompactAll(); err != nil {
			die(err)
		}
		fmt.Println("compacted")
	case "verify":
		if err := db.VerifyChecksums(); err != nil {
			die(err)
		}
		fmt.Println("all table checksums and orderings verified")
	case "property":
		if len(args) != 1 {
			usage()
		}
		v, ok := db.GetProperty(args[0])
		if !ok {
			die(fmt.Errorf("unknown property %q", args[0]))
		}
		fmt.Println(v)
	default:
		usage()
	}
}

// prefixSuccessor returns the smallest key greater than every key with
// the given prefix (nil for an all-0xff prefix).
func prefixSuccessor(prefix []byte) []byte {
	out := append([]byte(nil), prefix...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xff {
			out[i]++
			return out[:i+1]
		}
	}
	return nil
}
