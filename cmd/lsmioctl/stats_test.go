package main

import (
	"strings"
	"testing"
	"time"

	"lsmio/internal/iosched"
	"lsmio/internal/obs"
)

// The iosched section renders from a real scheduler's registry snapshot
// — one row per class, populated from the same instruments a live
// deployment records — and stays silent for a snapshot with no iosched
// instruments (a store opened without a scheduler attached).
func TestWriteIOSchedSection(t *testing.T) {
	reg := obs.NewRegistry()
	now := int64(0)
	s := iosched.New(iosched.Config{
		BytesPerSec: 100e6,
		Obs:         reg,
		Now:         func() (d time.Duration) { return time.Duration(now) },
		Sleep:       func(d time.Duration) { now += int64(d) },
	})
	s.Acquire(iosched.Foreground, 1<<20)
	s.Acquire(iosched.Scrub, 4<<20)

	var b strings.Builder
	writeIOSchedSection(&b, reg.Snapshot())
	out := b.String()
	for _, want := range []string{"device budget 100.0 MB/s", "foreground", "scrub", "deficit"} {
		if !strings.Contains(out, want) {
			t.Fatalf("iosched section missing %q:\n%s", want, out)
		}
	}

	b.Reset()
	writeIOSchedSection(&b, obs.NewRegistry().Snapshot())
	if b.Len() != 0 {
		t.Fatalf("section printed for a snapshot with no iosched instruments:\n%s", b.String())
	}
}
