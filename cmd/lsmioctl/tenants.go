package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lsmio"
	"lsmio/internal/svc"
)

// tenantsCmd implements `lsmioctl tenants [-json] [-health]` for a
// service directory (one holding a SERVICE.json written by lsmiod): the
// tenant quota table and shard layout, without opening the shard
// stores. -health adds the supervisor's per-shard view (state, restart
// counts, breaker status) recorded when the manifest was last written.
func tenantsCmd(fs lsmio.FS, args []string) {
	fset := flag.NewFlagSet("tenants", flag.ExitOnError)
	asJSON := fset.Bool("json", false, "emit the manifest as JSON")
	health := fset.Bool("health", false, "show per-shard supervisor state, restarts, and breaker status")
	fset.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: lsmioctl -dir <service> tenants [-json] [-health]")
		fset.PrintDefaults()
		os.Exit(2)
	}
	fset.Parse(args)

	m, err := svc.ReadManifest(fs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsmioctl: not a service directory:", err)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(m); err != nil {
			fmt.Fprintln(os.Stderr, "lsmioctl:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("service: %d shard(s), epoch %d, %d tenant(s)\n", m.Shards, m.Epoch, len(m.Tenants))
	fmt.Printf("%-24s %8s %14s %12s\n", "TENANT", "WEIGHT", "BYTES/S", "OPS/S")
	for _, t := range m.Tenants {
		fmt.Printf("%-24s %8.2f %14s %12s\n", t.Name, t.Weight, rateOrDash(t.BytesPerSec), rateOrDash(t.OpsPerSec))
	}
	if *health {
		if len(m.ShardStatus) == 0 {
			fmt.Println("\nno shard health recorded (manifest predates the supervisor, or it was disabled)")
			return
		}
		fmt.Printf("\n%-6s %-11s %9s %-10s %11s\n", "SHARD", "STATE", "RESTARTS", "BREAKER", "CONSEC-ERRS")
		for _, sh := range m.ShardStatus {
			breaker := sh.Breaker
			if breaker == "" {
				breaker = "-"
			}
			fmt.Printf("%-6d %-11s %9d %-10s %11d\n", sh.Shard, sh.State, sh.Restarts, breaker, sh.ConsecErrs)
		}
	}
}

func rateOrDash(r float64) string {
	if r <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", r)
}
