package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lsmio"
	"lsmio/internal/svc"
)

// tenantsCmd implements `lsmioctl tenants [-json]` for a service
// directory (one holding a SERVICE.json written by lsmiod): the tenant
// quota table and shard layout, without opening the shard stores.
func tenantsCmd(fs lsmio.FS, args []string) {
	fset := flag.NewFlagSet("tenants", flag.ExitOnError)
	asJSON := fset.Bool("json", false, "emit the manifest as JSON")
	fset.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: lsmioctl -dir <service> tenants [-json]")
		fset.PrintDefaults()
		os.Exit(2)
	}
	fset.Parse(args)

	m, err := svc.ReadManifest(fs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsmioctl: not a service directory:", err)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(m); err != nil {
			fmt.Fprintln(os.Stderr, "lsmioctl:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("service: %d shard(s), epoch %d, %d tenant(s)\n", m.Shards, m.Epoch, len(m.Tenants))
	fmt.Printf("%-24s %8s %14s %12s\n", "TENANT", "WEIGHT", "BYTES/S", "OPS/S")
	for _, t := range m.Tenants {
		fmt.Printf("%-24s %8.2f %14s %12s\n", t.Name, t.Weight, rateOrDash(t.BytesPerSec), rateOrDash(t.OpsPerSec))
	}
}

func rateOrDash(r float64) string {
	if r <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", r)
}
