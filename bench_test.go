package lsmio_test

// Benchmark harness: one testing.B benchmark per paper table/figure
// (running the figure's sweep at a reduced scale and reporting the
// series' aggregate bandwidths as custom metrics), plus ablation
// benchmarks for each design choice DESIGN.md calls out. The full
// paper-scale regeneration is `go run ./cmd/lsmio-bench`.

import (
	"fmt"
	"testing"

	"lsmio"
	"lsmio/internal/bench"
	"lsmio/internal/histdata"
	"lsmio/internal/ior"
	"lsmio/internal/pfs"
	"lsmio/internal/sim"
)

// benchScale is small enough for test runs but keeps every mechanism
// (memtable rotation, stripe interleave, lock migration) active.
func benchScale() bench.Scale {
	return bench.Scale{
		Nodes:        []int{8},
		PerRankBytes: 2 << 20,
		BufferSize:   512 << 10,
	}
}

// runFigureBench sweeps one figure per iteration and reports each series'
// bandwidth in MB/s.
func runFigureBench(b *testing.B, fig bench.Figure) {
	b.Helper()
	var last *bench.FigureResult
	for i := 0; i < b.N; i++ {
		fr, err := bench.RunFigure(fig, benchScale(), nil)
		if err != nil {
			b.Fatal(err)
		}
		last = fr
	}
	if last != nil {
		for _, s := range last.Figure.Series {
			bw := last.PeakBW(s.Name, last.Figure.Transfers[0], 0)
			b.ReportMetric(bw/1e6, s.Name+"_MB/s")
		}
	}
}

func BenchmarkFig01GrowthData(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := histdata.ComputeGrowth(histdata.Figure1())
		if g.ComputeFactor < 1000 {
			b.Fatal("growth data corrupted")
		}
	}
}

func BenchmarkFig05BaselineVsLSMIO(b *testing.B)   { runFigureBench(b, bench.Fig5()) }
func BenchmarkFig06HDF5ADIOS2VsLSMIO(b *testing.B) { runFigureBench(b, bench.Fig6()) }
func BenchmarkFig07PluginTrio(b *testing.B)        { runFigureBench(b, bench.Fig7()) }
func BenchmarkFig08StripeCounts(b *testing.B)      { runFigureBench(b, bench.Fig8()) }
func BenchmarkFig09Collective(b *testing.B)        { runFigureBench(b, bench.Fig9()) }
func BenchmarkFig10Reads(b *testing.B)             { runFigureBench(b, bench.Fig10()) }

// ---------------------------------------------------------------------
// Ablations: the engine-level design choices the paper's §3.1.1 toggles,
// measured as real (wall-clock) put+barrier throughput on the in-memory
// filesystem. b.SetBytes makes `go test -bench` report real MB/s.

const (
	ablationValue = 16 << 10
	ablationPuts  = 256
)

func ablationStore(b *testing.B, mutate func(*lsmio.StoreOptions)) lsmio.Store {
	b.Helper()
	opts := lsmio.StoreOptions{
		FS:              lsmio.NewMemFS(),
		WriteBufferSize: 1 << 20,
	}
	if mutate != nil {
		mutate(&opts)
	}
	st, err := lsmio.OpenStore(fmt.Sprintf("ablate-%d", b.N), opts)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

func runAblation(b *testing.B, mutate func(*lsmio.StoreOptions)) {
	b.Helper()
	value := make([]byte, ablationValue)
	for i := range value {
		value[i] = byte(i * 7)
	}
	b.SetBytes(ablationValue * ablationPuts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := ablationStore(b, mutate)
		b.StartTimer()
		for j := 0; j < ablationPuts; j++ {
			if err := st.Put(fmt.Sprintf("key-%06d", j), value, false); err != nil {
				b.Fatal(err)
			}
		}
		if err := st.WriteBarrier(true); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		st.Close()
		b.StartTimer()
	}
}

// BenchmarkAblationWAL compares the paper's headline customization:
// write-ahead log disabled (default here) versus enabled.
func BenchmarkAblationWAL(b *testing.B) {
	b.Run("disabled", func(b *testing.B) { runAblation(b, nil) })
	b.Run("enabled", func(b *testing.B) {
		runAblation(b, func(o *lsmio.StoreOptions) { o.EnableWAL = true })
	})
}

// BenchmarkAblationSync compares asynchronous flushing (barrier-based
// durability) with fully synchronous writes.
func BenchmarkAblationSync(b *testing.B) {
	b.Run("async", func(b *testing.B) {
		runAblation(b, func(o *lsmio.StoreOptions) { o.Async = true })
	})
	b.Run("sync-flush", func(b *testing.B) { runAblation(b, nil) })
}

// BenchmarkAblationBufferSize sweeps the memtable size (the knob the
// paper ties to ADIOS2's BufferChunkSize).
func BenchmarkAblationBufferSize(b *testing.B) {
	for _, size := range []int{256 << 10, 1 << 20, 4 << 20} {
		b.Run(fmt.Sprintf("%dKiB", size>>10), func(b *testing.B) {
			runAblation(b, func(o *lsmio.StoreOptions) { o.WriteBufferSize = size })
		})
	}
}

// BenchmarkAblationBlockSize sweeps the SSTable block size.
func BenchmarkAblationBlockSize(b *testing.B) {
	for _, size := range []int{4 << 10, 64 << 10, 256 << 10} {
		b.Run(fmt.Sprintf("%dKiB", size>>10), func(b *testing.B) {
			runAblation(b, func(o *lsmio.StoreOptions) { o.BlockSize = size })
		})
	}
}

// BenchmarkAblationCompression compares raw blocks (the paper's choice
// for checkpoint data) with the two block codecs (snappy, flate).
func BenchmarkAblationCompression(b *testing.B) {
	b.Run("disabled", func(b *testing.B) { runAblation(b, nil) })
	b.Run("snappy", func(b *testing.B) {
		runAblation(b, func(o *lsmio.StoreOptions) {
			o.EnableCompression = true
			o.Codec = lsmio.CompressionSnappy
		})
	})
	b.Run("flate", func(b *testing.B) {
		runAblation(b, func(o *lsmio.StoreOptions) {
			o.EnableCompression = true
			o.Codec = lsmio.CompressionFlate
		})
	})
}

// BenchmarkAblationCompaction compares compaction off (write-once
// checkpoints) with leveled compaction on.
func BenchmarkAblationCompaction(b *testing.B) {
	b.Run("disabled", func(b *testing.B) { runAblation(b, nil) })
	b.Run("enabled", func(b *testing.B) {
		runAblation(b, func(o *lsmio.StoreOptions) { o.EnableCompaction = true })
	})
}

// BenchmarkAblationBackend compares the rocks-style local store (no WAL)
// with the level-style store (WAL + WriteBatch aggregation, §3.1.2).
func BenchmarkAblationBackend(b *testing.B) {
	b.Run("rocks", func(b *testing.B) {
		runAblation(b, func(o *lsmio.StoreOptions) { o.Backend = lsmio.BackendRocks })
	})
	b.Run("level", func(b *testing.B) {
		runAblation(b, func(o *lsmio.StoreOptions) { o.Backend = lsmio.BackendLevel })
	})
}

// BenchmarkAblationMMap compares per-block table writes with mmap-style
// coalesced segments.
func BenchmarkAblationMMap(b *testing.B) {
	b.Run("off", func(b *testing.B) { runAblation(b, nil) })
	b.Run("on", func(b *testing.B) {
		runAblation(b, func(o *lsmio.StoreOptions) { o.UseMMap = true })
	})
}

// BenchmarkAblationCollective compares per-rank stores with the §5.1
// collective mode (a group's ranks forwarding to one leader-hosted
// store), on the simulated cluster.
func BenchmarkAblationCollective(b *testing.B) {
	run := func(b *testing.B, collective bool, groupSize int) {
		const nodes = 8
		for i := 0; i < b.N; i++ {
			cluster := pfs.NewCluster(sim.NewKernel(), pfs.VikingConfig(nodes))
			p := ior.DefaultParams(ior.APILSMIO, 64<<10, 16)
			p.WriteBufferSize = 512 << 10
			p.LSMIOCollective = collective
			p.LSMIOGroupSize = groupSize
			res, err := ior.Run(cluster, nodes, p)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.WriteBW/1e6, "agg_MB/s")
		}
	}
	b.Run("per-rank", func(b *testing.B) { run(b, false, 0) })
	b.Run("collective-group4", func(b *testing.B) { run(b, true, 4) })
	b.Run("collective-all", func(b *testing.B) { run(b, true, 0) })
}

// BenchmarkAblationBatchRead compares the paper's current read path
// (synchronous point lookups, §4.5) with the §5.1 batch-read proposal
// (one sequential sweep), on the simulated cluster.
func BenchmarkAblationBatchRead(b *testing.B) {
	run := func(b *testing.B, batch bool) {
		const nodes = 8
		for i := 0; i < b.N; i++ {
			cluster := pfs.NewCluster(sim.NewKernel(), pfs.VikingConfig(nodes))
			p := ior.DefaultParams(ior.APILSMIO, 64<<10, 16)
			p.WriteBufferSize = 512 << 10
			p.DoRead = true
			p.LSMIOBatchRead = batch
			res, err := ior.Run(cluster, nodes, p)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.ReadBW/1e6, "read_MB/s")
		}
	}
	b.Run("point-gets", func(b *testing.B) { run(b, false) })
	b.Run("batch-scan", func(b *testing.B) { run(b, true) })
}
