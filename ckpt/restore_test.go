package ckpt

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"lsmio/internal/core"
	"lsmio/internal/sim"
	"lsmio/internal/vfs"
)

// commitVars commits one step with the given named payloads.
func commitVars(t *testing.T, s *Store, step int64, vars map[string][]byte) {
	t.Helper()
	c, err := s.Begin(step)
	if err != nil {
		t.Fatalf("begin %d: %v", step, err)
	}
	for name, data := range vars {
		if err := c.Write(name, data); err != nil {
			t.Fatalf("write %d/%s: %v", step, name, err)
		}
	}
	if err := c.Commit(); err != nil {
		t.Fatalf("commit %d: %v", step, err)
	}
}

func restorePayloads(n int) map[string][]byte {
	vars := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		vars[fmt.Sprintf("var%02d", i)] = bytes.Repeat([]byte{byte(i + 1)}, 8<<10)
	}
	return vars
}

func TestParallelRestoreMatchesSerial(t *testing.T) {
	s, mgr := newStore(t, 0)
	defer mgr.Close()
	vars := restorePayloads(8)
	commitVars(t, s, 7, vars)

	serialStep, serial, err := s.RestoreLatest()
	if err != nil {
		t.Fatalf("serial restore: %v", err)
	}
	step, state, rep, err := s.Restore(RestoreOptions{Parallel: 4})
	if err != nil {
		t.Fatalf("parallel restore: %v", err)
	}
	if step != serialStep || step != 7 {
		t.Fatalf("steps differ: serial %d parallel %d", serialStep, step)
	}
	if len(state) != len(serial) {
		t.Fatalf("state sizes differ: %d vs %d", len(state), len(serial))
	}
	for name, want := range vars {
		if !bytes.Equal(state[name], want) {
			t.Fatalf("variable %s differs after parallel restore", name)
		}
	}
	if rep.Parallel != 4 || rep.Vars != 8 || rep.BytesRead != 8*(8<<10) {
		t.Fatalf("report: %+v", rep)
	}
}

// TestParallelRestoreInSimulator runs the worker pool as simulation
// processes: the restore must complete deterministically under the
// cooperative kernel and return verified state.
func TestParallelRestoreInSimulator(t *testing.T) {
	k := sim.NewKernel()
	mgr, err := core.NewManager("app", core.ManagerOptions{
		Store:  core.StoreOptions{FS: vfs.NewMemFS(), WriteBufferSize: 64 << 10},
		Kernel: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	s := New(mgr, Options{})
	vars := restorePayloads(6)
	failed := false
	k.Spawn("restorer", func(p *sim.Proc) {
		commitVars(t, s, 3, vars)
		step, state, rep, err := s.Restore(RestoreOptions{Parallel: 4})
		if err != nil || step != 3 {
			t.Errorf("sim restore: step=%d err=%v", step, err)
			failed = true
			return
		}
		for name, want := range vars {
			if !bytes.Equal(state[name], want) {
				t.Errorf("variable %s differs after sim parallel restore", name)
				failed = true
			}
		}
		if rep.Parallel != 4 {
			t.Errorf("report parallel = %d, want 4", rep.Parallel)
			failed = true
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("kernel: %v", err)
	}
	if failed {
		t.FailNow()
	}
}

func TestDeltaRestoreReusesLocalSnapshot(t *testing.T) {
	s, mgr := newStore(t, 0)
	defer mgr.Close()
	vars := restorePayloads(4)
	commitVars(t, s, 5, vars)

	local := map[string][]byte{
		"var00": append([]byte(nil), vars["var00"]...), // matches → reused
		"var01": []byte("stale bytes"),                 // mismatch → read from store
	}
	step, state, rep, err := s.Restore(RestoreOptions{Parallel: 2, Local: local})
	if err != nil || step != 5 {
		t.Fatalf("delta restore: step=%d err=%v", step, err)
	}
	for name, want := range vars {
		if !bytes.Equal(state[name], want) {
			t.Fatalf("variable %s differs after delta restore", name)
		}
	}
	if rep.DeltaVars != 1 || rep.DeltaBytes != 8<<10 {
		t.Fatalf("delta accounting: %+v", rep)
	}
	if rep.BytesRead != 3*(8<<10) {
		t.Fatalf("BytesRead = %d, want only the 3 non-delta variables", rep.BytesRead)
	}
}

// TestRestoreJournalResumesAfterCrash injects a crash mid-restore (after
// the newest step was rejected) and checks the next session resumes from
// the journal: quarantine marks survive, the candidate is re-verified,
// and exactly the damaged step stays quarantined.
func TestRestoreJournalResumesAfterCrash(t *testing.T) {
	s, mgr := newStore(t, 0)
	defer mgr.Close()
	for step := int64(1); step <= 4; step++ {
		commitVars(t, s, step, map[string][]byte{
			"state": bytes.Repeat([]byte{byte(step)}, 4<<10),
		})
	}
	// Damage the newest step's payload.
	if err := mgr.Put(s.dataKey(4, "state"), []byte("garbage")); err != nil {
		t.Fatal(err)
	}

	crash := errors.New("injected crash")
	_, _, _, err := s.Restore(RestoreOptions{
		Journal: true,
		Hook: func(phase string, step int64, name string) error {
			if phase == "var" && step == 3 {
				return crash // die while verifying the fallback candidate
			}
			return nil
		},
	})
	if !errors.Is(err, crash) {
		t.Fatalf("want injected crash, got %v", err)
	}
	if _, err := mgr.Get(s.journalKey()); err != nil {
		t.Fatalf("journal missing after crash: %v", err)
	}

	step, state, rep, err := s.Restore(RestoreOptions{Journal: true})
	if err != nil {
		t.Fatalf("resumed restore: %v", err)
	}
	if step != 3 {
		t.Fatalf("resumed restore step = %d, want 3", step)
	}
	if !rep.Resumed {
		t.Fatalf("report not marked resumed: %+v", rep)
	}
	if !bytes.Equal(state["state"], bytes.Repeat([]byte{3}, 4<<10)) {
		t.Fatal("resumed restore returned wrong payload")
	}
	q, err := s.Quarantined()
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 1 || q[4] == "" {
		t.Fatalf("quarantined = %v, want exactly step 4", q)
	}
	if _, err := mgr.Get(s.journalKey()); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("journal not cleared after success: %v", err)
	}
}

// TestRestoreJournalStaleIsIgnored: steps committed after a crashed
// session make its journal stale; the next restore must start fresh
// from the newest step instead of trusting it.
func TestRestoreJournalStaleIsIgnored(t *testing.T) {
	s, mgr := newStore(t, 0)
	defer mgr.Close()
	commitVars(t, s, 1, map[string][]byte{"state": []byte("one")})
	// Plant a journal claiming a session was restoring step 1.
	blob, _ := json.Marshal(restoreJournal{Step: 1})
	if err := mgr.PutSync(s.journalKey(), blob); err != nil {
		t.Fatal(err)
	}
	commitVars(t, s, 2, map[string][]byte{"state": []byte("two")})

	step, _, rep, err := s.Restore(RestoreOptions{Journal: true})
	if err != nil || step != 2 {
		t.Fatalf("restore: step=%d err=%v", step, err)
	}
	if rep.Resumed {
		t.Fatal("stale journal was resumed")
	}
}

// TestManifestDigestDetectsTamperedManifest: a manifest swapped for a
// different but still-valid JSON (payload CRCs intact) must fail the
// digest check, quarantine the step and fall back.
func TestManifestDigestDetectsTamperedManifest(t *testing.T) {
	s, mgr := newStore(t, 0)
	defer mgr.Close()
	commitVars(t, s, 1, map[string][]byte{"keep": []byte("old state")})
	commitVars(t, s, 2, map[string][]byte{
		"keep": []byte("new state"),
		"drop": []byte("secretly removed"),
	})

	// Rewrite step 2's manifest without the "drop" variable: every
	// remaining CRC still verifies, so only the digest can catch it.
	m, err := s.loadManifest(2)
	if err != nil {
		t.Fatal(err)
	}
	var kept []varEntry
	for _, v := range m.Vars {
		if v.Name == "keep" {
			kept = append(kept, v)
		}
	}
	blob, _ := json.Marshal(manifest{Step: 2, Vars: kept})
	if err := mgr.Put(s.manifestKey(2), blob); err != nil {
		t.Fatal(err)
	}

	if err := s.Verify(2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Verify on tampered manifest: %v", err)
	}
	step, state, rep, err := s.Restore(RestoreOptions{})
	if err != nil || step != 1 {
		t.Fatalf("restore: step=%d err=%v", step, err)
	}
	if !bytes.Equal(state["keep"], []byte("old state")) {
		t.Fatal("fallback returned wrong payload")
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != 2 {
		t.Fatalf("quarantined = %v, want [2]", rep.Quarantined)
	}
	q, _ := s.Quarantined()
	if reason := q[2]; reason == "" || !errors.Is(ErrCorrupt, ErrCorrupt) {
		t.Fatalf("missing quarantine reason: %q", reason)
	}
}

// TestQuarantineReasonPersistsAcrossReopen (satellite): the recorded
// reason must survive a full manager close/reopen, and Latest must keep
// skipping the step in the new session.
func TestQuarantineReasonPersistsAcrossReopen(t *testing.T) {
	fs := vfs.NewMemFS()
	open := func() (*Store, *core.Manager) {
		mgr, err := core.NewManager("app", core.ManagerOptions{
			Store: core.StoreOptions{FS: fs, WriteBufferSize: 64 << 10},
		})
		if err != nil {
			t.Fatal(err)
		}
		return New(mgr, Options{}), mgr
	}
	s, mgr := open()
	commitVars(t, s, 1, map[string][]byte{"state": []byte("good")})
	commitVars(t, s, 2, map[string][]byte{"state": []byte("bad")})
	const reason = "operator note: torn write found by audit"
	if err := s.Quarantine(2, reason); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	s2, mgr2 := open()
	defer mgr2.Close()
	q, err := s2.Quarantined()
	if err != nil {
		t.Fatal(err)
	}
	if q[2] != reason {
		t.Fatalf("reason after reopen = %q, want %q", q[2], reason)
	}
	step, err := s2.Latest()
	if err != nil || step != 1 {
		t.Fatalf("Latest after reopen = %d, %v; want 1", step, err)
	}
	step, _, err = s2.RestoreLatest()
	if err != nil || step != 1 {
		t.Fatalf("RestoreLatest after reopen = %d, %v; want 1", step, err)
	}
}

func TestRestoreContextCancellation(t *testing.T) {
	s, mgr := newStore(t, 0)
	defer mgr.Close()
	commitVars(t, s, 1, map[string][]byte{"state": []byte("data")})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, err := s.Restore(RestoreOptions{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// Cancellation must not quarantine anything.
	if q, _ := s.Quarantined(); len(q) != 0 {
		t.Fatalf("cancellation quarantined steps: %v", q)
	}
}
