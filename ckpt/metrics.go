package ckpt

import (
	"lsmio/internal/obs"
)

// ckptMetrics holds the store's obs instrument handles under the `ckpt.`
// prefix. They live in the underlying Manager's registry, so one
// snapshot covers `core.*`, `lsm.*` and `ckpt.*` together, and the
// quarantine/fallback trace events land in the same ring as the engine's
// flush/compaction spans.
type ckptMetrics struct {
	commits       *obs.Counter
	quarantines   *obs.Counter
	unquarantines *obs.Counter

	// restoreFallbacks counts steps RestoreLatest had to skip past
	// (failed verification on the restore path); a nonzero value after a
	// restart means the newest checkpoint was lost.
	restoreFallbacks *obs.Counter

	// Restore pipeline instruments: completed restores, journal-driven
	// resumes after a crashed restore, bytes read from the store vs
	// bytes reused from a local delta snapshot, and the end-to-end
	// restore latency distribution (p50/p99 feed the ext-restore bench).
	restores          *obs.Counter
	restoreResumes    *obs.Counter
	restoreBytes      *obs.Counter
	restoreDeltaVars  *obs.Counter
	restoreDeltaBytes *obs.Counter
	restoreLatency    *obs.Histogram

	scrubVerified      *obs.Counter
	scrubRepaired      *obs.Counter
	scrubUnrecoverable *obs.Counter

	trace *obs.Trace
}

func newCkptMetrics(reg *obs.Registry) ckptMetrics {
	s := reg.Scope("ckpt")
	return ckptMetrics{
		commits:       s.Counter("commits"),
		quarantines:   s.Counter("quarantines"),
		unquarantines: s.Counter("unquarantines"),

		restoreFallbacks: s.Counter("restore.fallbacks"),

		restores:          s.Counter("restore.count"),
		restoreResumes:    s.Counter("restore.resumes"),
		restoreBytes:      s.Counter("restore.bytes"),
		restoreDeltaVars:  s.Counter("restore.delta.vars"),
		restoreDeltaBytes: s.Counter("restore.delta.bytes"),
		restoreLatency:    s.Histogram("restore.latency"),

		scrubVerified:      s.Counter("scrub.verified"),
		scrubRepaired:      s.Counter("scrub.repaired"),
		scrubUnrecoverable: s.Counter("scrub.unrecoverable"),

		trace: s.Trace(),
	}
}
