package ckpt

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"lsmio/internal/core"
	"lsmio/internal/lsm"
	"lsmio/internal/resil"
	"lsmio/internal/sim"
)

// The self-healing restore pipeline. RestoreLatest is rebuilt on top of
// Restore: candidates are walked newest→oldest; each candidate's
// variables are read by a bounded worker pool (simulation processes
// under the simulator, goroutines outside it) with per-variable CRC
// verification, manifest-digest verification, a resil.Policy for
// transient read faults, and an optional delta path that reuses
// variables already present in a local snapshot. A candidate that fails
// verification is quarantined and the restore resumes onto the
// next-older step mid-flight; an optional journal makes a crashed
// restore resumable — the next session re-installs any quarantine marks
// the crash lost and picks up at the recorded candidate.

// RestoreOptions tunes one Restore call. The zero value reproduces the
// classic serial RestoreLatest.
type RestoreOptions struct {
	// Parallel bounds the worker pool reading one step's variables
	// (≤1 = serial). Workers are simulation processes under the
	// simulator, goroutines outside it.
	Parallel int
	// Policy retries transient per-variable read faults (on top of any
	// storage-level retry). The zero policy reads each variable once.
	Policy resil.Policy
	// Ctx, when set, cancels the restore between operations
	// (cooperative: an operation in flight is never interrupted).
	Ctx context.Context
	// Local is a delta-restore snapshot: a variable whose recorded
	// length and CRC match its Local entry is reused (and re-verified
	// by checksum) without touching the store.
	Local map[string][]byte
	// Journal persists restore progress under the store's prefix so a
	// crash mid-restore resumes where it left off instead of
	// re-verifying from the newest step.
	Journal bool
	// Hook is a fault-injection point for tests: called at phase
	// "start" (once), "step" (per candidate) and "var" (per variable);
	// a non-nil return aborts the restore there, simulating a crash.
	Hook func(phase string, step int64, name string) error
}

// RestoreReport describes what one Restore call did.
type RestoreReport struct {
	Step        int64   // restored step (0 when no step survived)
	Candidates  int     // candidates examined, including the restored one
	Quarantined []int64 // steps newly quarantined by this call
	Resumed     bool    // a prior crashed session's journal was resumed
	Vars        int     // variables in the restored state
	BytesRead   int64   // payload bytes read from the store
	DeltaVars   int64   // variables reused from the Local snapshot
	DeltaBytes  int64   // payload bytes those reused variables saved
	Parallel    int     // effective worker-pool width
	Elapsed     time.Duration
}

// kernClock adapts the simulation kernel to resil.Clock: backoffs are
// charged to whichever process is current when Sleep runs, so each
// restore worker sleeps on its own virtual timeline.
type kernClock struct{ k *sim.Kernel }

func (c kernClock) Now() time.Duration { return c.k.Now().Duration() }
func (c kernClock) Sleep(d time.Duration) {
	if p := c.k.Current(); p != nil {
		p.Sleep(d)
	}
}

func (s *Store) restoreClock() resil.Clock {
	if k := s.mgr.Kernel(); k != nil {
		return kernClock{k}
	}
	return resil.WallClock()
}

func (s *Store) journalKey() string { return s.pfx + "/restore/journal" }

// restoreJournal is the persisted progress of one restore session:
// the candidate being verified and every step the session rejected
// (with the quarantine reason, so a crash that lost an async quarantine
// write can re-install it on resume).
type restoreJournal struct {
	Step     int64            `json:"step"`
	Rejected map[int64]string `json:"rejected,omitempty"`
}

func (s *Store) readJournal() (restoreJournal, bool, error) {
	j := restoreJournal{Step: -1, Rejected: map[int64]string{}}
	blob, err := s.mgr.Get(s.journalKey())
	if errors.Is(err, core.ErrNotFound) {
		return j, false, nil
	}
	if err != nil {
		if errors.Is(err, lsm.ErrCorruption) {
			// A damaged journal only costs the resume optimization;
			// self-heal by discarding it.
			_ = s.mgr.Del(s.journalKey())
			return j, false, nil
		}
		return j, false, err
	}
	if uerr := json.Unmarshal(blob, &j); uerr != nil {
		_ = s.mgr.Del(s.journalKey())
		return restoreJournal{Step: -1, Rejected: map[int64]string{}}, false, nil
	}
	if j.Rejected == nil {
		j.Rejected = map[int64]string{}
	}
	return j, true, nil
}

// journalValid reports whether the journal belongs to the store's
// current state: every committed, non-quarantined step newer than the
// journal's candidate must be one the journal rejected. Anything else
// (e.g. steps committed after the crashed session) makes it stale.
func (s *Store) journalValid(j restoreJournal, steps []int64, quarantined map[int64]string) bool {
	for i := len(steps) - 1; i >= 0; i-- {
		step := steps[i]
		if step <= j.Step {
			break
		}
		if _, bad := quarantined[step]; bad {
			continue
		}
		if _, rej := j.Rejected[step]; !rej {
			return false
		}
	}
	return true
}

func (s *Store) writeJournal(j restoreJournal) error {
	blob, err := json.Marshal(j)
	if err != nil {
		return err
	}
	// Synchronous put: the journal is only useful if it survives the
	// crash it is protecting against.
	return s.mgr.PutSync(s.journalKey(), blob)
}

func (s *Store) hook(opts RestoreOptions, phase string, step int64, name string) error {
	if opts.Hook == nil {
		return nil
	}
	return opts.Hook(phase, step, name)
}

// Restore restores the newest fully-verified checkpoint under opts and
// reports what it did. Steps that fail verification (corrupt manifest or
// digest, missing or corrupt variables) are quarantined with the failure
// as the reason and the search resumes onto the next-older step; other
// errors (storage faults past the policy's budget, cancellation, hook
// aborts) surface immediately, leaving the journal (when enabled) in
// place for the next session. It returns ErrNoCheckpoint when no step
// survives.
func (s *Store) Restore(opts RestoreOptions) (int64, map[string][]byte, *RestoreReport, error) {
	par := opts.Parallel
	if par < 1 {
		par = 1
	}
	rep := &RestoreReport{Parallel: par}
	start := s.mgr.Obs().Now()
	if err := s.hook(opts, "start", 0, ""); err != nil {
		return 0, nil, rep, err
	}
	steps, err := s.Steps()
	if err != nil {
		return 0, nil, rep, err
	}
	quarantined, err := s.Quarantined()
	if err != nil {
		return 0, nil, rep, err
	}
	journal := restoreJournal{Step: -1, Rejected: map[int64]string{}}
	if opts.Journal {
		j, ok, jerr := s.readJournal()
		if jerr != nil {
			return 0, nil, rep, jerr
		}
		if ok && s.journalValid(j, steps, quarantined) {
			journal = j
			// Re-install quarantine marks the crash may have lost: the
			// journal is written synchronously, quarantines are not.
			for step, reason := range j.Rejected {
				if _, bad := quarantined[step]; bad {
					continue
				}
				if qerr := s.Quarantine(step, reason); qerr != nil {
					return 0, nil, rep, qerr
				}
				quarantined[step] = reason
				rep.Quarantined = append(rep.Quarantined, step)
			}
			rep.Resumed = true
			s.m.restoreResumes.Inc()
			s.m.trace.Emitf("ckpt.restore.resume", "step=%d rejected=%d", j.Step, len(j.Rejected))
		}
	}
	for i := len(steps) - 1; i >= 0; i-- {
		step := steps[i]
		if _, bad := quarantined[step]; bad {
			continue
		}
		if opts.Ctx != nil {
			if cerr := opts.Ctx.Err(); cerr != nil {
				return 0, nil, rep, fmt.Errorf("ckpt: restore canceled before step %d: %w", step, cerr)
			}
		}
		rep.Candidates++
		if opts.Journal {
			journal.Step = step
			if jerr := s.writeJournal(journal); jerr != nil {
				return 0, nil, rep, jerr
			}
		}
		if herr := s.hook(opts, "step", step, ""); herr != nil {
			return 0, nil, rep, herr
		}
		state, rerr := s.restoreStep(step, par, opts, rep)
		if rerr == nil {
			rep.Step = step
			rep.Vars = len(state)
			if opts.Journal {
				if jerr := s.mgr.Del(s.journalKey()); jerr != nil {
					return 0, nil, rep, jerr
				}
			}
			rep.Elapsed = s.mgr.Obs().Now() - start
			s.m.restores.Inc()
			s.m.restoreLatency.ObserveDuration(rep.Elapsed)
			s.m.trace.Emitf("ckpt.restore",
				"step=%d vars=%d bytes=%d delta_bytes=%d parallel=%d resumed=%v",
				step, rep.Vars, rep.BytesRead, rep.DeltaBytes, par, rep.Resumed)
			return step, state, rep, nil
		}
		if errors.Is(rerr, ErrCorrupt) || errors.Is(rerr, ErrIncomplete) {
			if qerr := s.Quarantine(step, rerr.Error()); qerr != nil {
				return 0, nil, rep, qerr
			}
			quarantined[step] = rerr.Error()
			journal.Rejected[step] = rerr.Error()
			rep.Quarantined = append(rep.Quarantined, step)
			s.m.restoreFallbacks.Inc()
			s.m.trace.Emitf("ckpt.restore.fallback", "step=%d err=%v", step, rerr)
			continue
		}
		return 0, nil, rep, rerr
	}
	return 0, nil, rep, ErrNoCheckpoint
}

// restoreStep reads and verifies one candidate step through the worker
// pool. It returns the fully-verified state, or an error wrapping
// ErrCorrupt/ErrIncomplete (quarantine + fall back) or a store-level
// error (abort).
func (s *Store) restoreStep(step int64, par int, opts RestoreOptions, rep *RestoreReport) (map[string][]byte, error) {
	m, err := s.loadManifest(step)
	if err != nil {
		return nil, classifyCorrupt(step, err)
	}
	vars := m.Vars
	results := make([][]byte, len(vars))
	errs := make([]error, len(vars))
	var next, bytesRead, deltaVars, deltaBytes int64
	var failed atomic.Bool

	readVar := func(clk resil.Clock, i int) error {
		v := vars[i]
		if herr := s.hook(opts, "var", step, v.Name); herr != nil {
			return herr
		}
		if local, ok := opts.Local[v.Name]; ok &&
			int64(len(local)) == v.Bytes && crc32.ChecksumIEEE(local) == v.CRC {
			results[i] = local
			atomic.AddInt64(&deltaVars, 1)
			atomic.AddInt64(&deltaBytes, v.Bytes)
			return nil
		}
		key := s.dataKey(step, v.Name)
		var data []byte
		rerr := opts.Policy.Do(opts.Ctx, clk, uint64(step)^uint64(i)*0x9e3779b97f4a7c15,
			func(int) error {
				var gerr error
				data, gerr = s.mgr.Get(key)
				if errors.Is(gerr, core.ErrNotFound) {
					return fmt.Errorf("%w: step %d missing variable %q (store key %s)",
						ErrIncomplete, step, v.Name, key)
				}
				return classifyCorrupt(step, gerr)
			})
		if rerr != nil {
			return rerr
		}
		if int64(len(data)) != v.Bytes || crc32.ChecksumIEEE(data) != v.CRC {
			return fmt.Errorf("%w: step %d variable %q (store key %s)",
				ErrCorrupt, step, v.Name, key)
		}
		results[i] = data
		atomic.AddInt64(&bytesRead, v.Bytes)
		return nil
	}

	worker := func(clk resil.Clock) {
		for {
			if failed.Load() {
				return
			}
			i := int(atomic.AddInt64(&next, 1)) - 1
			if i >= len(vars) {
				return
			}
			if werr := readVar(clk, i); werr != nil {
				errs[i] = werr
				failed.Store(true)
				return
			}
		}
	}

	n := par
	if n > len(vars) {
		n = len(vars)
	}
	kern := s.mgr.Kernel()
	switch {
	case n <= 1:
		worker(s.restoreClock())
	case kern != nil && kern.Current() != nil:
		// Inside the simulator: the pool is n simulation processes; the
		// DB's cooperative platform lock interleaves their reads exactly
		// as goroutines would interleave real ones.
		cur := kern.Current()
		procs := make([]*sim.Proc, n)
		for w := 0; w < n; w++ {
			procs[w] = kern.Spawn(fmt.Sprintf("ckpt-restore-w%d", w), func(p *sim.Proc) {
				worker(kernClock{kern})
			})
		}
		for _, pr := range procs {
			cur.Join(pr)
		}
	default:
		var wg sync.WaitGroup
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				worker(resil.WallClock())
			}()
		}
		wg.Wait()
	}

	rep.BytesRead += bytesRead
	rep.DeltaVars += deltaVars
	rep.DeltaBytes += deltaBytes
	s.m.restoreBytes.Add(bytesRead)
	s.m.restoreDeltaVars.Add(deltaVars)
	s.m.restoreDeltaBytes.Add(deltaBytes)
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	out := make(map[string][]byte, len(vars))
	for i, v := range vars {
		out[v.Name] = results[i]
	}
	return out, nil
}
