package ckpt

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"lsmio/internal/core"
	"lsmio/internal/vfs"
)

// commitStep writes a single-variable checkpoint and commits it.
func commitStep(t *testing.T, s *Store, step int64, payload []byte) {
	t.Helper()
	c, err := s.Begin(step)
	if err != nil {
		t.Fatalf("begin %d: %v", step, err)
	}
	if err := c.Write("state", payload); err != nil {
		t.Fatalf("write %d: %v", step, err)
	}
	if err := c.Commit(); err != nil {
		t.Fatalf("commit %d: %v", step, err)
	}
}

func TestCorruptErrorNamesStoreKey(t *testing.T) {
	s, mgr := newStore(t, 0)
	defer mgr.Close()
	commitStep(t, s, 1, []byte("good data"))

	// Flip the stored bytes behind the manifest's back.
	if err := mgr.Put(s.dataKey(1, "state"), []byte("bad data!")); err != nil {
		t.Fatal(err)
	}
	_, err := s.Read(1, "state")
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if !strings.Contains(err.Error(), s.dataKey(1, "state")) {
		t.Fatalf("error does not name the store key: %v", err)
	}
	if _, err := s.ReadAll(1); !errors.Is(err, ErrCorrupt) ||
		!strings.Contains(err.Error(), s.dataKey(1, "state")) {
		t.Fatalf("ReadAll error does not name the store key: %v", err)
	}
}

func TestIncompleteErrorNamesStoreKey(t *testing.T) {
	s, mgr := newStore(t, 0)
	defer mgr.Close()
	commitStep(t, s, 1, []byte("payload"))
	if err := mgr.Del(s.dataKey(1, "state")); err != nil {
		t.Fatal(err)
	}
	_, err := s.Read(1, "state")
	if !errors.Is(err, ErrIncomplete) {
		t.Fatalf("want ErrIncomplete, got %v", err)
	}
	if !strings.Contains(err.Error(), s.dataKey(1, "state")) {
		t.Fatalf("error does not name the store key: %v", err)
	}
}

func TestCorruptManifestNamesStoreKey(t *testing.T) {
	s, mgr := newStore(t, 0)
	defer mgr.Close()
	commitStep(t, s, 1, []byte("payload"))
	if err := mgr.Put(s.manifestKey(1), []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	_, err := s.ReadAll(1)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if !strings.Contains(err.Error(), s.manifestKey(1)) {
		t.Fatalf("error does not name the manifest key: %v", err)
	}
}

func TestRestoreLatestFallsBackAndQuarantines(t *testing.T) {
	s, mgr := newStore(t, 0)
	defer mgr.Close()
	good := []byte("good state v2")
	commitStep(t, s, 1, []byte("good state v1"))
	commitStep(t, s, 2, good)
	commitStep(t, s, 3, []byte("good state v3"))

	// Damage step 3 (corrupt) — restore must fall back to step 2.
	if err := mgr.Put(s.dataKey(3, "state"), []byte("garbage!!!!!!")); err != nil {
		t.Fatal(err)
	}
	step, state, err := s.RestoreLatest()
	if err != nil {
		t.Fatalf("RestoreLatest: %v", err)
	}
	if step != 2 || !bytes.Equal(state["state"], good) {
		t.Fatalf("restored step %d (state %q), want 2 (%q)", step, state["state"], good)
	}

	// The damaged step is quarantined with a reason naming the key.
	q, err := s.Quarantined()
	if err != nil {
		t.Fatal(err)
	}
	reason, bad := q[3]
	if !bad {
		t.Fatalf("step 3 not quarantined: %v", q)
	}
	if !strings.Contains(reason, s.dataKey(3, "state")) {
		t.Fatalf("quarantine reason does not name the key: %q", reason)
	}

	// Latest now skips the quarantined step without re-verifying.
	if latest, err := s.Latest(); err != nil || latest != 2 {
		t.Fatalf("Latest = %d, %v; want 2", latest, err)
	}

	// Unquarantine restores visibility (the data is still damaged, but
	// that is now the operator's explicit decision).
	if err := s.Unquarantine(3); err != nil {
		t.Fatal(err)
	}
	if latest, err := s.Latest(); err != nil || latest != 3 {
		t.Fatalf("Latest after unquarantine = %d, %v; want 3", latest, err)
	}
}

func TestRestoreLatestSkipsIncompleteStep(t *testing.T) {
	s, mgr := newStore(t, 0)
	defer mgr.Close()
	good := []byte("survivor")
	commitStep(t, s, 10, good)
	commitStep(t, s, 11, []byte("doomed"))
	if err := mgr.Del(s.dataKey(11, "state")); err != nil {
		t.Fatal(err)
	}
	step, state, err := s.RestoreLatest()
	if err != nil || step != 10 || !bytes.Equal(state["state"], good) {
		t.Fatalf("RestoreLatest = %d, %q, %v; want 10, %q", step, state["state"], err, good)
	}
}

func TestRestoreLatestAllDamaged(t *testing.T) {
	s, mgr := newStore(t, 0)
	defer mgr.Close()
	commitStep(t, s, 1, []byte("x"))
	if err := mgr.Put(s.dataKey(1, "state"), []byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.RestoreLatest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("want ErrNoCheckpoint, got %v", err)
	}
}

func TestLatestVerified(t *testing.T) {
	s, mgr := newStore(t, 0)
	defer mgr.Close()
	commitStep(t, s, 1, []byte("ok"))
	commitStep(t, s, 2, []byte("ok too"))
	if err := mgr.Put(s.dataKey(2, "state"), []byte("junk!!")); err != nil {
		t.Fatal(err)
	}
	step, err := s.LatestVerified()
	if err != nil || step != 1 {
		t.Fatalf("LatestVerified = %d, %v; want 1", step, err)
	}
	// LatestVerified does not quarantine.
	if q, _ := s.Quarantined(); len(q) != 0 {
		t.Fatalf("LatestVerified must not quarantine: %v", q)
	}
}

// TestScrubQuarantinesEngineCorruption damages SSTable bytes underneath a
// committed step — disk damage the ckpt payload checksums never get to
// see because the engine's block checksum fails first. The scrubber must
// classify that engine error as per-step corruption (quarantine the step,
// keep scrubbing, restore falls back) rather than abort the whole pass.
func TestScrubQuarantinesEngineCorruption(t *testing.T) {
	fs := vfs.NewMemFS()
	open := func() (*Store, *core.Manager) {
		mgr, err := core.NewManager("app", core.ManagerOptions{
			Store: core.StoreOptions{FS: fs, WriteBufferSize: 32 << 10},
		})
		if err != nil {
			t.Fatal(err)
		}
		return New(mgr, Options{}), mgr
	}
	s, mgr := open()

	// Incompressible payloads: their bytes survive block compression
	// near-literally, so step 2's data can be located inside an SSTable.
	rng := rand.New(rand.NewSource(7))
	good := make([]byte, 48<<10)
	rng.Read(good)
	bad := make([]byte, 48<<10)
	rng.Read(bad)
	commitStep(t, s, 1, good)
	commitStep(t, s, 2, bad)
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	marker := bad[1024:1088]
	names, err := fs.List("app")
	if err != nil {
		t.Fatal(err)
	}
	corrupted := false
	for _, name := range names {
		if !strings.HasSuffix(name, ".sst") {
			continue
		}
		f, err := fs.Open("app/" + name)
		if err != nil {
			t.Fatal(err)
		}
		size, err := fs.Stat("app/" + name)
		if err != nil {
			t.Fatal(err)
		}
		blob := make([]byte, size)
		if _, err := f.ReadAt(blob, 0); err != nil {
			t.Fatal(err)
		}
		if i := bytes.Index(blob, marker); i >= 0 {
			flipped := make([]byte, 16)
			for j := range flipped {
				flipped[j] = ^blob[i+j]
			}
			if _, err := f.WriteAt(flipped, int64(i)); err != nil {
				t.Fatal(err)
			}
			corrupted = true
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if !corrupted {
		t.Fatal("step 2 payload not found in any SSTable")
	}

	s, mgr = open()
	defer mgr.Close()
	rep, err := s.Scrub()
	if err != nil {
		t.Fatalf("scrub aborted on engine corruption: %v", err)
	}
	if rep.Steps != 2 || rep.Verified != 1 || rep.Unrecoverable != 1 {
		t.Fatalf("scrub report = %+v, want 2 steps / 1 verified / 1 unrecoverable", rep)
	}
	q, err := s.Quarantined()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q[2]; !ok {
		t.Fatalf("step 2 not quarantined: %v", q)
	}
	step, state, err := s.RestoreLatest()
	if err != nil {
		t.Fatalf("restore after quarantine: %v", err)
	}
	if step != 1 || !bytes.Equal(state["state"], good) {
		t.Fatalf("restored step %d, want fallback to intact step 1", step)
	}
}
