package ckpt

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Graceful degradation after partial failures. A checkpoint that commits
// its manifest but is later found corrupt or incomplete (disk damage, a
// torn write the barrier protocol did not cover, an operator fat-finger)
// must not brick the restart path: restore falls back to the newest step
// that verifies end-to-end, and the damaged step is quarantined — recorded
// in the store so later Latest/RestoreLatest calls skip it without
// re-verifying, and operators can inspect what was lost and why.

func (s *Store) quarantineKey(step int64) string {
	return fmt.Sprintf("%s/quarantine/%016d", s.pfx, step)
}

func (s *Store) quarantinePrefix() string { return s.pfx + "/quarantine/" }

// Quarantine marks a committed step as damaged. The step's data is kept
// (forensics may still recover pieces of it) but Latest, LatestVerified
// and RestoreLatest will skip it. Reason is stored for operators.
func (s *Store) Quarantine(step int64, reason string) error {
	if err := s.mgr.Put(s.quarantineKey(step), []byte(reason)); err != nil {
		return err
	}
	s.m.quarantines.Inc()
	s.m.trace.Emitf("ckpt.quarantine", "step=%d reason=%s", step, reason)
	return nil
}

// Unquarantine clears a step's quarantine mark (e.g. after a manual
// repair).
func (s *Store) Unquarantine(step int64) error {
	if err := s.mgr.Del(s.quarantineKey(step)); err != nil {
		return err
	}
	s.m.unquarantines.Inc()
	s.m.trace.Emitf("ckpt.unquarantine", "step=%d", step)
	return nil
}

// Quarantined returns every quarantined step with its recorded reason.
func (s *Store) Quarantined() (map[int64]string, error) {
	out := make(map[int64]string)
	err := s.mgr.ReadBatch(s.quarantinePrefix(), func(key string, value []byte) bool {
		raw := strings.TrimPrefix(key, s.quarantinePrefix())
		if n, err := strconv.ParseInt(raw, 10, 64); err == nil {
			out[n] = string(value)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Verify checks a committed step end-to-end: the manifest parses and every
// variable is present with the recorded length and checksum. It returns
// nil, an error wrapping ErrCorrupt/ErrIncomplete naming the offending
// store key, or a store-level error.
func (s *Store) Verify(step int64) error {
	_, err := s.ReadAll(step)
	return err
}

// LatestVerified returns the newest committed step that passes Verify,
// skipping (but not modifying) quarantined steps. Unlike Latest it pays a
// full read of each candidate until one verifies.
func (s *Store) LatestVerified() (int64, error) {
	steps, err := s.Steps()
	if err != nil {
		return 0, err
	}
	quarantined, err := s.Quarantined()
	if err != nil {
		return 0, err
	}
	for i := len(steps) - 1; i >= 0; i-- {
		step := steps[i]
		if _, bad := quarantined[step]; bad {
			continue
		}
		verr := s.Verify(step)
		if verr == nil {
			return step, nil
		}
		if errors.Is(verr, ErrCorrupt) || errors.Is(verr, ErrIncomplete) {
			continue
		}
		return 0, verr
	}
	return 0, ErrNoCheckpoint
}

// ScrubReport summarizes one Scrub pass over a checkpoint store.
type ScrubReport struct {
	// Steps is how many committed steps were examined.
	Steps int
	// Verified counts healthy steps (passed end-to-end verification and
	// were not quarantined).
	Verified int
	// Repaired counts previously-quarantined steps that now verify —
	// e.g. after a storage-level rebuild — and were unquarantined.
	Repaired int
	// Unrecoverable counts steps that fail verification; newly-damaged
	// ones are quarantined with the failure as the reason.
	Unrecoverable int
}

// Scrub runs one verification pass over every committed step: healthy
// steps are counted, newly-damaged steps are quarantined (so restore
// skips them without paying re-verification), and quarantined steps that
// verify again — typically because the storage layer rebuilt their
// stripes — are unquarantined. The `lsmioctl scrub` subcommand is a thin
// wrapper around this.
func (s *Store) Scrub() (ScrubReport, error) {
	var rep ScrubReport
	steps, err := s.Steps()
	if err != nil {
		return rep, err
	}
	quarantined, err := s.Quarantined()
	if err != nil {
		return rep, err
	}
	for _, step := range steps {
		rep.Steps++
		_, wasQuarantined := quarantined[step]
		verr := s.Verify(step)
		switch {
		case verr == nil && wasQuarantined:
			if err := s.Unquarantine(step); err != nil {
				return rep, err
			}
			rep.Repaired++
			s.m.scrubRepaired.Inc()
		case verr == nil:
			rep.Verified++
			s.m.scrubVerified.Inc()
		case errors.Is(verr, ErrCorrupt) || errors.Is(verr, ErrIncomplete):
			rep.Unrecoverable++
			s.m.scrubUnrecoverable.Inc()
			if !wasQuarantined {
				if err := s.Quarantine(step, verr.Error()); err != nil {
					return rep, err
				}
			}
		default:
			return rep, verr
		}
	}
	s.m.trace.Emitf("ckpt.scrub", "steps=%d verified=%d repaired=%d unrecoverable=%d",
		rep.Steps, rep.Verified, rep.Repaired, rep.Unrecoverable)
	return rep, nil
}

// RestoreLatest restores the newest fully-verified checkpoint. Steps that
// fail verification (corrupt or incomplete) are quarantined with the
// failure as the reason, and the search falls back to the next-newest
// step. It returns ErrNoCheckpoint when no step survives. It is the
// zero-options entry to the Restore pipeline (restore.go): serial,
// no journal, no delta snapshot.
func (s *Store) RestoreLatest() (int64, map[string][]byte, error) {
	step, state, _, err := s.Restore(RestoreOptions{})
	return step, state, err
}
