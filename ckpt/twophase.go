package ckpt

// Two-phase durability interface. A plain Store commits synchronously:
// Commit returns only after the write barrier and manifest land on the
// parallel file system. A write-back staging tier (internal/burst) wants
// a weaker acknowledgment — Commit returns once the step is
// staged-consistent in the fast tier, and the application asks
// separately when it needs PFS durability. TwoPhase captures that split
// so applications can be written against one interface and run over
// either a direct store or a staging tier.

// Writer is the per-step write handle shared by both commit disciplines.
// *Checkpoint satisfies it.
type Writer interface {
	// Write stores one named variable in the step.
	Write(name string, data []byte) error
	// Commit acknowledges the step at the implementation's first
	// durability phase: fully durable for a direct store,
	// staged-consistent for a staging tier.
	Commit() error
	// Abort discards the uncommitted step.
	Abort() error
}

// TwoPhase is the two-phase checkpoint API: Commit acknowledges phase
// one (staged), WaitDurable/Sync acknowledge phase two (drained to the
// backing store, manifest installed).
type TwoPhase interface {
	// Begin starts a checkpoint step.
	Begin(step int64) (Writer, error)
	// WaitDurable blocks until the given committed step is durable on
	// the backing store, returning the drain error if it failed.
	WaitDurable(step int64) error
	// Sync blocks until every committed step is durable.
	Sync() error
	// RestoreLatest restores the newest usable checkpoint (either
	// phase), never a partially-drained image.
	RestoreLatest() (int64, map[string][]byte, error)
}

// Direct adapts a plain Store to TwoPhase: commit and durability are
// the same phase, so WaitDurable and Sync return immediately.
type Direct struct {
	*Store
}

// Begin starts a step on the underlying store.
func (d Direct) Begin(step int64) (Writer, error) { return d.Store.Begin(step) }

// WaitDurable is a no-op: a direct Commit is already durable.
func (d Direct) WaitDurable(step int64) error { return nil }

// Sync is a no-op: a direct Commit is already durable.
func (d Direct) Sync() error { return nil }
