package ckpt

import (
	"bytes"
	"errors"
	"testing"
)

// Direct must satisfy TwoPhase with the degenerate phase split: commit
// and durability coincide. These tests pin down the adapter's edges.

func TestDirectWaitDurableUnknownStep(t *testing.T) {
	s, mgr := newStore(t, 0)
	defer mgr.Close()
	tp := Direct{s}

	// A step never begun, an aborted step, and a committed step are all
	// "durable" to a direct store — WaitDurable must never block or error.
	if err := tp.WaitDurable(42); err != nil {
		t.Fatalf("WaitDurable(unknown) = %v, want nil", err)
	}
	w, err := tp.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	w.Write("state", []byte("x"))
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tp.WaitDurable(1); err != nil {
		t.Fatalf("WaitDurable(committed) = %v, want nil", err)
	}
	if err := tp.WaitDurable(-7); err != nil {
		t.Fatalf("WaitDurable(negative) = %v, want nil", err)
	}
}

func TestDirectSyncAfterPartialBegin(t *testing.T) {
	s, mgr := newStore(t, 0)
	defer mgr.Close()
	tp := Direct{s}

	// An open, uncommitted step must not be published by Sync: Sync is a
	// no-op for the direct adapter and the step stays invisible.
	w, err := tp.Begin(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write("half", []byte("partial")); err != nil {
		t.Fatal(err)
	}
	if err := tp.Sync(); err != nil {
		t.Fatalf("Sync with open step = %v, want nil", err)
	}
	if _, err := s.Latest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("uncommitted step visible after Sync: Latest = %v", err)
	}
	if err := w.Abort(); err != nil {
		t.Fatalf("abort after Sync: %v", err)
	}
	if err := tp.Sync(); err != nil {
		t.Fatalf("Sync after abort = %v", err)
	}
	// The step number is reusable after the abort.
	w2, err := tp.Begin(5)
	if err != nil {
		t.Fatalf("Begin after abort: %v", err)
	}
	w2.Write("full", []byte("complete"))
	if err := w2.Commit(); err != nil {
		t.Fatal(err)
	}
	step, state, err := tp.RestoreLatest()
	if err != nil || step != 5 {
		t.Fatalf("restore = %d, %v", step, err)
	}
	if !bytes.Equal(state["full"], []byte("complete")) {
		t.Fatal("restored wrong payload")
	}
	if _, ok := state["half"]; ok {
		t.Fatal("aborted variable leaked into the committed step")
	}
}

func TestDirectRestoreLatestEmptyStore(t *testing.T) {
	s, mgr := newStore(t, 0)
	defer mgr.Close()
	tp := Direct{s}

	if _, _, err := tp.RestoreLatest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("RestoreLatest on empty store = %v, want ErrNoCheckpoint", err)
	}
	// Still empty after a Begin+Abort cycle.
	w, _ := tp.Begin(1)
	w.Write("v", []byte("x"))
	w.Abort()
	if _, _, err := tp.RestoreLatest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("RestoreLatest after abort = %v, want ErrNoCheckpoint", err)
	}
}

func TestScrubQuarantinesAndRepairs(t *testing.T) {
	s, mgr := newStore(t, 0)
	defer mgr.Close()

	good := []byte("good state")
	for step := int64(1); step <= 3; step++ {
		w, _ := s.Begin(step)
		w.Write("state", good)
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Step 2 is silently damaged.
	if err := mgr.Put(s.dataKey(2, "state"), []byte("garbage!!")); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 3 || rep.Verified != 2 || rep.Unrecoverable != 1 || rep.Repaired != 0 {
		t.Fatalf("scrub report = %+v, want 3 steps / 2 verified / 1 unrecoverable", rep)
	}
	q, _ := s.Quarantined()
	if _, bad := q[2]; !bad {
		t.Fatal("scrub did not quarantine the damaged step")
	}
	// A second pass is stable: the damaged step is already quarantined.
	rep, err = s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unrecoverable != 1 || rep.Repaired != 0 {
		t.Fatalf("second scrub report = %+v", rep)
	}
	// The storage layer "repairs" the step; scrub lifts the quarantine.
	if err := mgr.Put(s.dataKey(2, "state"), good); err != nil {
		t.Fatal(err)
	}
	rep, err = s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired != 1 || rep.Unrecoverable != 0 || rep.Verified != 2 {
		t.Fatalf("post-repair scrub report = %+v, want 1 repaired", rep)
	}
	if q, _ := s.Quarantined(); len(q) != 0 {
		t.Fatalf("quarantine not lifted: %v", q)
	}
	if _, _, err := s.RestoreLatest(); err != nil {
		t.Fatalf("restore after scrub: %v", err)
	}
}
