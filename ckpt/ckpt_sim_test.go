package ckpt

import (
	"bytes"
	"fmt"
	"testing"

	"lsmio/internal/core"
	"lsmio/internal/lsm"
	"lsmio/internal/mpisim"
	"lsmio/internal/pfs"
	"lsmio/internal/sim"
)

// TestCheckpointOnSimulatedCluster runs the full stack end to end: eight
// MPI ranks on the simulated Lustre cluster checkpoint through the ckpt
// layer (manifests, retention), then every rank restores its newest
// committed step and verifies content.
func TestCheckpointOnSimulatedCluster(t *testing.T) {
	const ranks = 8
	k := sim.NewKernel()
	cluster := pfs.NewCluster(k, pfs.VikingConfig(ranks))
	world := mpisim.NewWorld(k, cluster.Fabric(), ranks)

	state := func(rank int, step int64) []byte {
		return bytes.Repeat([]byte{byte(rank*16 + int(step))}, 64<<10)
	}

	err := world.Run(func(r *mpisim.Rank) {
		mgr, err := core.NewManager(fmt.Sprintf("ck/rank%02d", r.Rank()), core.ManagerOptions{
			Store: core.StoreOptions{
				FS:              cluster.Client(r.Rank()),
				Platform:        lsm.SimPlatform(k),
				Async:           true,
				WriteBufferSize: 256 << 10,
			},
			Kernel: k,
			MPI:    r,
		})
		if err != nil {
			t.Error(err)
			return
		}
		store := New(mgr, Options{Keep: 2})

		for _, step := range []int64{1, 2, 3} {
			c, err := store.Begin(step)
			if err != nil {
				t.Error(err)
				return
			}
			for v := 0; v < 4; v++ {
				if err := c.Write(fmt.Sprintf("var%d", v), state(r.Rank(), step)); err != nil {
					t.Error(err)
					return
				}
			}
			if err := c.Commit(); err != nil {
				t.Error(err)
				return
			}
			r.Barrier() // all ranks complete the step's checkpoint together
		}

		// Restore: retention must have pruned step 1.
		steps, err := store.Steps()
		if err != nil || len(steps) != 2 || steps[0] != 2 || steps[1] != 3 {
			t.Errorf("rank %d steps = %v, %v", r.Rank(), steps, err)
			return
		}
		latest, _ := store.Latest()
		all, err := store.ReadAll(latest)
		if err != nil {
			t.Error(err)
			return
		}
		for v := 0; v < 4; v++ {
			if !bytes.Equal(all[fmt.Sprintf("var%d", v)], state(r.Rank(), latest)) {
				t.Errorf("rank %d var%d mismatch after restore", r.Rank(), v)
				return
			}
		}
		if err := mgr.Close(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := cluster.Stats(); s.BytesWritten == 0 || s.LockSwitches != 0 {
		// Per-rank stores: the whole run must be lock-migration free.
		t.Fatalf("storage stats: %+v", s)
	}
}
