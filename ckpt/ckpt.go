// Package ckpt is a versioned checkpoint/restart layer on top of LSMIO:
// the piece a scientific application actually wants above the raw K/V
// API. It manages named variables per checkpoint step, commits
// atomically (a checkpoint either has a manifest — written last, after
// the write barrier — or is invisible), verifies integrity on read, and
// prunes old checkpoints under a retention policy.
//
//	store := ckpt.New(mgr, ckpt.Options{Keep: 3})
//	c, _ := store.Begin(42)
//	c.Write("temperature", tempBytes)
//	c.Write("pressure", presBytes)
//	c.Commit() // barrier + manifest + retention
//
//	step, _ := store.Latest()
//	state, _ := store.ReadAll(step) // one sequential batch read
package ckpt

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strconv"
	"strings"

	"lsmio/internal/core"
	"lsmio/internal/lsm"
)

// ErrNoCheckpoint reports that no committed checkpoint exists.
var ErrNoCheckpoint = errors.New("ckpt: no committed checkpoint")

// ErrCorrupt reports a checksum mismatch on read-back.
var ErrCorrupt = errors.New("ckpt: data corruption detected")

// ErrIncomplete reports a committed checkpoint whose manifest references
// data that is missing from the store (half-written or partially lost).
var ErrIncomplete = errors.New("ckpt: checkpoint incomplete")

// Options configures a checkpoint store.
type Options struct {
	// Keep retains only the newest Keep committed checkpoints; older ones
	// are deleted after each Commit. Zero keeps everything.
	Keep int
	// Prefix namespaces the store's keys (default "ckpt").
	Prefix string
}

// Store manages checkpoints inside an LSMIO Manager.
type Store struct {
	mgr  *core.Manager
	keep int
	pfx  string
	m    ckptMetrics
}

// New wraps an LSMIO manager as a checkpoint store.
func New(mgr *core.Manager, opts Options) *Store {
	pfx := opts.Prefix
	if pfx == "" {
		pfx = "ckpt"
	}
	return &Store{mgr: mgr, keep: opts.Keep, pfx: pfx, m: newCkptMetrics(mgr.Obs())}
}

// Manager exposes the underlying LSMIO manager.
func (s *Store) Manager() *core.Manager { return s.mgr }

type manifest struct {
	Step int64      `json:"step"`
	Vars []varEntry `json:"vars"`
}

type varEntry struct {
	Name  string `json:"name"`
	Bytes int64  `json:"bytes"`
	CRC   uint32 `json:"crc"`
}

func (s *Store) manifestKey(step int64) string {
	return fmt.Sprintf("%s/manifest/%016d", s.pfx, step)
}

func (s *Store) manifestPrefix() string { return s.pfx + "/manifest/" }

func (s *Store) dataKey(step int64, name string) string {
	return fmt.Sprintf("%s/data/%016d/%s", s.pfx, step, name)
}

func (s *Store) dataPrefix(step int64) string {
	return fmt.Sprintf("%s/data/%016d/", s.pfx, step)
}

// digestKey holds the CRC32 of the step's manifest blob (decimal
// string). The per-variable CRCs only cover payloads; the digest covers
// the manifest itself, so a damaged manifest that still parses (e.g. a
// truncated Vars list that is valid JSON) cannot silently narrow a
// step. Steps committed before digests existed have no digest key and
// are accepted as legacy.
func (s *Store) digestKey(step int64) string {
	return fmt.Sprintf("%s/digest/%016d", s.pfx, step)
}

// Checkpoint is an in-progress checkpoint; call Commit to publish it.
type Checkpoint struct {
	s         *Store
	step      int64
	vars      []varEntry
	committed bool
}

// Begin starts checkpoint `step`. Steps must be unique; beginning an
// already-committed step fails.
func (s *Store) Begin(step int64) (*Checkpoint, error) {
	if _, err := s.mgr.Get(s.manifestKey(step)); err == nil {
		return nil, fmt.Errorf("ckpt: step %d already committed", step)
	}
	return &Checkpoint{s: s, step: step}, nil
}

// Write stores one named variable in the checkpoint.
func (c *Checkpoint) Write(name string, data []byte) error {
	if c.committed {
		return fmt.Errorf("ckpt: write after commit")
	}
	if strings.ContainsAny(name, "/") {
		return fmt.Errorf("ckpt: variable name %q must not contain '/'", name)
	}
	if err := c.s.mgr.Put(c.s.dataKey(c.step, name), data); err != nil {
		return err
	}
	c.vars = append(c.vars, varEntry{
		Name:  name,
		Bytes: int64(len(data)),
		CRC:   crc32.ChecksumIEEE(data),
	})
	return nil
}

// Commit makes the checkpoint durable and visible: write barrier first,
// manifest last (with its own barrier), then retention pruning. A crash
// before the manifest lands leaves the step invisible; Latest and
// ReadAll never observe a partial checkpoint.
func (c *Checkpoint) Commit() error {
	if c.committed {
		return fmt.Errorf("ckpt: double commit")
	}
	if err := c.s.mgr.WriteBarrier(); err != nil {
		return err
	}
	m := manifest{Step: c.step, Vars: c.vars}
	blob, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if err := c.s.mgr.Put(c.s.manifestKey(c.step), blob); err != nil {
		return err
	}
	// Manifest digest, same barrier window as the manifest: a crash
	// between the two leaves a manifest without a digest, which reads as
	// a (valid) legacy step.
	digest := strconv.FormatUint(uint64(crc32.ChecksumIEEE(blob)), 10)
	if err := c.s.mgr.Put(c.s.digestKey(c.step), []byte(digest)); err != nil {
		return err
	}
	if err := c.s.mgr.WriteBarrier(); err != nil {
		return err
	}
	c.committed = true
	c.s.m.commits.Inc()
	c.s.m.trace.Emitf("ckpt.commit", "step=%d vars=%d", c.step, len(c.vars))
	return c.s.prune()
}

// Abort discards an uncommitted checkpoint's data.
func (c *Checkpoint) Abort() error {
	if c.committed {
		return fmt.Errorf("ckpt: abort after commit")
	}
	c.committed = true
	return c.s.deleteStepData(c.step, c.vars)
}

func (s *Store) deleteStepData(step int64, vars []varEntry) error {
	for _, v := range vars {
		if err := s.mgr.Del(s.dataKey(step, v.Name)); err != nil {
			return err
		}
	}
	return nil
}

// Steps lists committed checkpoint steps in ascending order.
func (s *Store) Steps() ([]int64, error) {
	var steps []int64
	err := s.mgr.ReadBatch(s.manifestPrefix(), func(key string, _ []byte) bool {
		raw := strings.TrimPrefix(key, s.manifestPrefix())
		if n, err := strconv.ParseInt(raw, 10, 64); err == nil {
			steps = append(steps, n)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i] < steps[j] })
	return steps, nil
}

// Latest returns the newest committed step that has not been quarantined
// (see Quarantine / RestoreLatest in recover.go).
func (s *Store) Latest() (int64, error) {
	steps, err := s.Steps()
	if err != nil {
		return 0, err
	}
	quarantined, err := s.Quarantined()
	if err != nil {
		return 0, err
	}
	for i := len(steps) - 1; i >= 0; i-- {
		if _, bad := quarantined[steps[i]]; !bad {
			return steps[i], nil
		}
	}
	return 0, ErrNoCheckpoint
}

// Manifest returns a committed checkpoint's variable inventory.
func (s *Store) Manifest(step int64) ([]string, error) {
	m, err := s.loadManifest(step)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(m.Vars))
	for i, v := range m.Vars {
		names[i] = v.Name
	}
	return names, nil
}

func (s *Store) loadManifest(step int64) (*manifest, error) {
	blob, err := s.mgr.Get(s.manifestKey(step))
	if errors.Is(err, core.ErrNotFound) {
		return nil, fmt.Errorf("%w (step %d)", ErrNoCheckpoint, step)
	}
	if err != nil {
		return nil, err
	}
	// Digest check before parsing: a present-but-mismatched digest marks
	// the manifest itself damaged. A missing digest is a legacy step.
	if want, derr := s.mgr.Get(s.digestKey(step)); derr == nil {
		got := strconv.FormatUint(uint64(crc32.ChecksumIEEE(blob)), 10)
		if got != string(want) {
			return nil, fmt.Errorf("%w: manifest digest mismatch for step %d (store key %s): recorded %s, computed %s",
				ErrCorrupt, step, s.manifestKey(step), want, got)
		}
	} else if !errors.Is(derr, core.ErrNotFound) {
		return nil, derr
	}
	var m manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("%w: manifest for step %d (store key %s): %v",
			ErrCorrupt, step, s.manifestKey(step), err)
	}
	return &m, nil
}

// Read loads one variable from a committed checkpoint, verifying its
// checksum.
func (s *Store) Read(step int64, name string) ([]byte, error) {
	m, err := s.loadManifest(step)
	if err != nil {
		return nil, err
	}
	for _, v := range m.Vars {
		if v.Name != name {
			continue
		}
		data, err := s.mgr.Get(s.dataKey(step, name))
		if errors.Is(err, core.ErrNotFound) {
			return nil, fmt.Errorf("%w: step %d variable %q (store key %s)",
				ErrIncomplete, step, name, s.dataKey(step, name))
		}
		if err != nil {
			return nil, err
		}
		if int64(len(data)) != v.Bytes || crc32.ChecksumIEEE(data) != v.CRC {
			return nil, fmt.Errorf("%w: step %d variable %q (store key %s)",
				ErrCorrupt, step, name, s.dataKey(step, name))
		}
		return data, nil
	}
	return nil, fmt.Errorf("ckpt: step %d has no variable %q", step, name)
}

// classifyCorrupt rewrites engine-level corruption under a step's keys
// (damaged SSTable blocks) as ErrCorrupt, so verification, scrubbing and
// restore fallback treat it like a failed payload checksum — quarantine
// the step and move on — instead of a fatal store error.
func classifyCorrupt(step int64, err error) error {
	if err != nil && errors.Is(err, lsm.ErrCorruption) {
		return fmt.Errorf("%w: step %d: %v", ErrCorrupt, step, err)
	}
	return err
}

// ReadAll restores a whole checkpoint with one sequential batch read (the
// §5.1 read path), verifying every checksum.
func (s *Store) ReadAll(step int64) (map[string][]byte, error) {
	m, err := s.loadManifest(step)
	if err != nil {
		return nil, classifyCorrupt(step, err)
	}
	want := make(map[string]varEntry, len(m.Vars))
	for _, v := range m.Vars {
		want[v.Name] = v
	}
	out := make(map[string][]byte, len(want))
	prefix := s.dataPrefix(step)
	err = s.mgr.ReadBatch(prefix, func(key string, value []byte) bool {
		name := strings.TrimPrefix(key, prefix)
		if _, ok := want[name]; ok {
			out[name] = value
		}
		return true
	})
	if err != nil {
		return nil, classifyCorrupt(step, err)
	}
	for name, v := range want {
		data, ok := out[name]
		if !ok {
			return nil, fmt.Errorf("%w: step %d missing variable %q (store key %s)",
				ErrIncomplete, step, name, s.dataKey(step, name))
		}
		if int64(len(data)) != v.Bytes || crc32.ChecksumIEEE(data) != v.CRC {
			return nil, fmt.Errorf("%w: step %d variable %q (store key %s)",
				ErrCorrupt, step, name, s.dataKey(step, name))
		}
	}
	return out, nil
}

// Size returns the total payload bytes of a committed checkpoint, as
// recorded in its manifest (data only, not key or manifest overhead).
func (s *Store) Size(step int64) (int64, error) {
	m, err := s.loadManifest(step)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, v := range m.Vars {
		total += v.Bytes
	}
	return total, nil
}

// Drop removes a committed checkpoint entirely.
func (s *Store) Drop(step int64) error {
	m, err := s.loadManifest(step)
	if err != nil {
		return err
	}
	// Delete the manifest first so a crash mid-drop cannot leave a
	// manifest pointing at missing data.
	if err := s.mgr.Del(s.manifestKey(step)); err != nil {
		return err
	}
	if err := s.mgr.Del(s.digestKey(step)); err != nil {
		return err
	}
	return s.deleteStepData(step, m.Vars)
}

// prune enforces the retention policy.
func (s *Store) prune() error {
	if s.keep <= 0 {
		return nil
	}
	steps, err := s.Steps()
	if err != nil {
		return err
	}
	for len(steps) > s.keep {
		if err := s.Drop(steps[0]); err != nil {
			return err
		}
		steps = steps[1:]
	}
	return nil
}
