package ckpt

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"lsmio/internal/core"
	"lsmio/internal/vfs"
)

func newStore(t *testing.T, keep int) (*Store, *core.Manager) {
	t.Helper()
	mgr, err := core.NewManager("app", core.ManagerOptions{
		Store: core.StoreOptions{FS: vfs.NewMemFS(), WriteBufferSize: 64 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(mgr, Options{Keep: keep}), mgr
}

func TestCheckpointLifecycle(t *testing.T) {
	s, mgr := newStore(t, 0)
	defer mgr.Close()

	if _, err := s.Latest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty store Latest: %v", err)
	}

	temp := bytes.Repeat([]byte{1, 2, 3, 4}, 10000)
	pres := bytes.Repeat([]byte{9}, 5000)
	c, err := s.Begin(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write("temperature", temp); err != nil {
		t.Fatal(err)
	}
	if err := c.Write("pressure", pres); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}

	step, err := s.Latest()
	if err != nil || step != 100 {
		t.Fatalf("latest = %d, %v", step, err)
	}
	names, err := s.Manifest(100)
	if err != nil || len(names) != 2 {
		t.Fatalf("manifest: %v %v", names, err)
	}
	got, err := s.Read(100, "temperature")
	if err != nil || !bytes.Equal(got, temp) {
		t.Fatalf("read temperature: %v", err)
	}
	all, err := s.ReadAll(100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(all["temperature"], temp) || !bytes.Equal(all["pressure"], pres) {
		t.Fatal("ReadAll contents wrong")
	}
}

func TestDuplicateStepRejected(t *testing.T) {
	s, mgr := newStore(t, 0)
	defer mgr.Close()
	c, _ := s.Begin(5)
	c.Write("v", []byte("x"))
	c.Commit()
	if _, err := s.Begin(5); err == nil {
		t.Fatal("re-beginning a committed step should fail")
	}
}

func TestCommitDisciplines(t *testing.T) {
	s, mgr := newStore(t, 0)
	defer mgr.Close()
	c, _ := s.Begin(1)
	c.Write("v", []byte("x"))
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err == nil {
		t.Fatal("double commit should fail")
	}
	if err := c.Write("w", []byte("y")); err == nil {
		t.Fatal("write after commit should fail")
	}
	if err := c.Abort(); err == nil {
		t.Fatal("abort after commit should fail")
	}
	// Bad variable names are rejected.
	c2, _ := s.Begin(2)
	if err := c2.Write("a/b", []byte("x")); err == nil {
		t.Fatal("slash in name should be rejected")
	}
}

func TestUncommittedCheckpointInvisible(t *testing.T) {
	s, mgr := newStore(t, 0)
	defer mgr.Close()
	good, _ := s.Begin(10)
	good.Write("v", []byte("committed"))
	good.Commit()

	// "Crash" mid-checkpoint: data written, no commit.
	partial, _ := s.Begin(11)
	partial.Write("v", []byte("partial"))

	steps, err := s.Steps()
	if err != nil || len(steps) != 1 || steps[0] != 10 {
		t.Fatalf("steps = %v, %v", steps, err)
	}
	if step, _ := s.Latest(); step != 10 {
		t.Fatalf("latest = %d, partial checkpoint leaked", step)
	}
	if _, err := s.ReadAll(11); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("reading uncommitted step: %v", err)
	}
}

func TestAbortRemovesData(t *testing.T) {
	s, mgr := newStore(t, 0)
	defer mgr.Close()
	c, _ := s.Begin(7)
	c.Write("v", []byte("doomed"))
	if err := c.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Get(s.dataKey(7, "v")); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("aborted data still present: %v", err)
	}
}

func TestRetentionPrunesOldCheckpoints(t *testing.T) {
	s, mgr := newStore(t, 3)
	defer mgr.Close()
	for step := int64(1); step <= 6; step++ {
		c, err := s.Begin(step)
		if err != nil {
			t.Fatal(err)
		}
		c.Write("state", bytes.Repeat([]byte{byte(step)}, 1000))
		if err := c.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	steps, _ := s.Steps()
	if fmt.Sprint(steps) != "[4 5 6]" {
		t.Fatalf("retained steps = %v", steps)
	}
	// Pruned data keys are gone, retained ones readable.
	if _, err := mgr.Get(s.dataKey(1, "state")); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("pruned data survived: %v", err)
	}
	if v, err := s.Read(6, "state"); err != nil || v[0] != 6 {
		t.Fatalf("retained checkpoint unreadable: %v", err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	s, mgr := newStore(t, 0)
	defer mgr.Close()
	c, _ := s.Begin(1)
	c.Write("v", []byte("pristine"))
	c.Commit()
	// Corrupt the stored value behind the checkpoint layer's back.
	mgr.Put(s.dataKey(1, "v"), []byte("tampered"))
	if _, err := s.Read(1, "v"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("read of tampered data: %v", err)
	}
	if _, err := s.ReadAll(1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadAll of tampered data: %v", err)
	}
}

func TestDropCheckpoint(t *testing.T) {
	s, mgr := newStore(t, 0)
	defer mgr.Close()
	for step := int64(1); step <= 3; step++ {
		c, _ := s.Begin(step)
		c.Write("v", []byte("x"))
		c.Commit()
	}
	if err := s.Drop(2); err != nil {
		t.Fatal(err)
	}
	steps, _ := s.Steps()
	if fmt.Sprint(steps) != "[1 3]" {
		t.Fatalf("steps after drop = %v", steps)
	}
	if err := s.Drop(2); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("double drop: %v", err)
	}
}

func TestRestartAcrossReopen(t *testing.T) {
	fs := vfs.NewMemFS()
	open := func() (*Store, *core.Manager) {
		mgr, err := core.NewManager("app", core.ManagerOptions{
			Store: core.StoreOptions{FS: fs, WriteBufferSize: 64 << 10},
		})
		if err != nil {
			t.Fatal(err)
		}
		return New(mgr, Options{}), mgr
	}
	s, mgr := open()
	c, _ := s.Begin(42)
	payload := bytes.Repeat([]byte("state"), 20000)
	c.Write("field", payload)
	c.Commit()
	mgr.Close()

	// Simulated restart: fresh manager over the same filesystem.
	s2, mgr2 := open()
	defer mgr2.Close()
	step, err := s2.Latest()
	if err != nil || step != 42 {
		t.Fatalf("latest after reopen: %d %v", step, err)
	}
	all, err := s2.ReadAll(42)
	if err != nil || !bytes.Equal(all["field"], payload) {
		t.Fatalf("restore after reopen: %v", err)
	}
}

func TestCustomPrefixIsolation(t *testing.T) {
	_, mgr := newStore(t, 0)
	defer mgr.Close()
	a := New(mgr, Options{Prefix: "appA"})
	b := New(mgr, Options{Prefix: "appB"})
	ca, _ := a.Begin(1)
	ca.Write("v", []byte("A"))
	ca.Commit()
	if _, err := b.Latest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("prefix isolation broken: %v", err)
	}
}
